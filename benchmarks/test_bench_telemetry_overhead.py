"""Telemetry overhead guard.

The observability layer promises near-zero cost: disabled telemetry is
shared no-op singletons, and *enabled* telemetry only touches per-phase
spans, one counter bulk-increment per run and buffered log records —
never the per-cycle hot path.  This bench times the same RTL regression
run through ``execute_run_job`` (the real batch-engine path) with and
without telemetry recording and asserts the enabled overhead stays under
~5%.  Results land in ``BENCH_telemetry_overhead.json``.
"""

import json
import time
from pathlib import Path

from repro.regression.parallel import RunJob, execute_run_job
from repro.stbus import ArbitrationPolicy, NodeConfig

CONFIG = NodeConfig(n_initiators=3, n_targets=2,
                    arbitration=ArbitrationPolicy.LRU, name="tele_ovh")
TEST = "t02_random_uniform"
ROUNDS = 5

#: Enabled-telemetry overhead budget on one RTL run (fraction), plus a
#: small absolute slack so sub-second workloads don't fail on scheduler
#: jitter alone.
MAX_OVERHEAD = 0.05
ABS_SLACK_S = 0.02


def _job(telemetry):
    return RunJob(
        config=CONFIG, test_name=TEST, seed=1, view="rtl",
        vcd_path=None, report_stem=None, bugs=frozenset(),
        with_arbitration_checker=True,
        telemetry=telemetry,
        submitted_at=time.time() if telemetry else None,
    )


def _min_wall(telemetry):
    """Min-of-N wall time: the least-noise estimate of the true cost."""
    best = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = execute_run_job(_job(telemetry))
        elapsed = time.perf_counter() - start
        assert result.passed
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_telemetry_overhead_under_budget():
    # Warm both paths once (imports, allocator, branch caches), then
    # interleave-measure plain and instrumented runs.
    execute_run_job(_job(False))
    execute_run_job(_job(True))
    plain_s = _min_wall(False)
    telemetry_s = _min_wall(True)
    overhead = telemetry_s / plain_s - 1.0
    payload = {
        "harness": "benchmarks/test_bench_telemetry_overhead.py",
        "workload": {
            "config": CONFIG.name, "test": TEST, "view": "rtl",
            "rounds": ROUNDS, "estimator": "min",
        },
        "plain_seconds": round(plain_s, 6),
        "telemetry_seconds": round(telemetry_s, 6),
        "overhead_percent": round(overhead * 100, 2),
        "budget_percent": MAX_OVERHEAD * 100,
    }
    path = Path(__file__).with_name("BENCH_telemetry_overhead.json")
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print()
    print(f"[telemetry] plain       {plain_s:.3f}s (min of {ROUNDS})")
    print(f"[telemetry] instrumented {telemetry_s:.3f}s "
          f"({overhead * 100:+.1f}%)")
    assert telemetry_s <= plain_s * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S, (
        f"telemetry overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget"
    )
