"""E3 — Section 4: the bus-accurate comparison and the 99% sign-off rate.

"The rate that is calculated at each port level is the number of cycles
RTL and BCA signals port are aligned over total number of clock cycles.
The targeted value, in order to consider BCA model signed off is 99%."

Two sides of the claim:

* a clean BCA model aligns at >= 99% on **every** port (ours: 100%);
* a buggy BCA model falls **below** the threshold on at least one port,
  so the metric actually discriminates (the paper's "low alignment rate"
  loop in Figure 4).
"""

import os

import pytest

from repro.analyzer import SIGNOFF_THRESHOLD, compare_vcds, diff_transactions
from repro.catg import run_test
from repro.regression.testcases import build_test
from repro.stbus import ArbitrationPolicy, NodeConfig, ProtocolType


def dual_run(config, test_name, seed, workdir, bugs=()):
    rtl_path = os.path.join(str(workdir), f"{test_name}_rtl.vcd")
    bca_path = os.path.join(str(workdir), f"{test_name}_bca.vcd")
    rtl = run_test(config, build_test(test_name, config, seed),
                   view="rtl", vcd_path=rtl_path)
    bca = run_test(config, build_test(test_name, config, seed),
                   view="bca", bugs=bugs, vcd_path=bca_path)
    return rtl, bca, compare_vcds(rtl_path, bca_path)


def test_e3_clean_model_signs_off_on_every_port(benchmark, tmp_path):
    config = NodeConfig(n_initiators=3, n_targets=2,
                        protocol_type=ProtocolType.T3,
                        arbitration=ArbitrationPolicy.LRU, name="clean")

    def experiment():
        reports = []
        for test_name in ("t02_random_uniform", "t03_out_of_order",
                          "t06_lru_fairness", "t09_mixed_sizes"):
            _, _, report = dual_run(config, test_name, 5, tmp_path)
            reports.append((test_name, report))
        return reports

    reports = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for test_name, report in reports:
        print(f"[E3] {test_name}: min port rate "
              f"{report.min_rate * 100:.2f}% "
              f"({'signed off' if report.signed_off else 'NOT signed off'})")
        assert report.signed_off
        for port in report.ports.values():
            assert port.rate >= SIGNOFF_THRESHOLD
    print(f"[E3] paper: >=99% per port for sign-off; "
          f"ours: every port 100%")


@pytest.mark.parametrize("bug,test_name", [
    ("lru-recency-stuck", "t06_lru_fairness"),
    ("subword-lane-misplacement", "t09_mixed_sizes"),
    ("chunk-lock-ignored", "t08_locked_chunks"),
], ids=lambda x: x if isinstance(x, str) else "")
def test_e3_buggy_model_drops_below_threshold(benchmark, tmp_path, bug,
                                              test_name):
    config = NodeConfig(n_initiators=3, n_targets=2,
                        arbitration=ArbitrationPolicy.LRU, name="buggy")

    def experiment():
        return dual_run(config, test_name, 2, tmp_path, bugs={bug})

    rtl, bca, report = benchmark.pedantic(experiment, rounds=1, iterations=1)
    worst = report.worst_port()
    print(f"\n[E3] bug {bug}: worst port {worst.port} at "
          f"{worst.rate * 100:.2f}% (first divergence @{worst.first_divergence})")
    assert rtl.passed  # the golden view is still clean
    assert not report.signed_off
    assert worst.rate < SIGNOFF_THRESHOLD
    benchmark.extra_info["worst_rate"] = worst.rate


def test_e3_transaction_diff_localizes_divergence(benchmark, tmp_path):
    """STBA's transaction extraction: a content bug shows up as diverging
    packets at the target ports, not as a mere timing skew."""
    config = NodeConfig(n_initiators=2, n_targets=2, name="lanes")

    def experiment():
        rtl_path = os.path.join(str(tmp_path), "d_rtl.vcd")
        bca_path = os.path.join(str(tmp_path), "d_bca.vcd")
        run_test(config, build_test("t09_mixed_sizes", config, 3),
                 view="rtl", vcd_path=rtl_path)
        run_test(config, build_test("t09_mixed_sizes", config, 3),
                 view="bca", bugs={"subword-lane-misplacement"},
                 vcd_path=bca_path)
        return diff_transactions(rtl_path, bca_path)

    diff = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(diff.render())
    assert not diff.functionally_equal
    assert any("targ" in name and not d.functionally_equal
               for name, d in diff.ports.items())
