"""Ablation — which mechanism of the common environment earns its keep.

DESIGN.md calls out the environment's layered defenses: protocol
checkers, scoreboard, the DUT-specific arbitration reference checker
("Specific checks, not covered by CATG, have also been developed",
Section 5), and — upstream of all of them — the TLM phase on the fast
BCA mode (the paper's future work).

This bench disables mechanisms one at a time and re-runs the five-bug
experiment: the detection matrix shows that (a) dropping the arbitration
reference checker loses two bugs entirely — the quantitative argument for
developing specific checks — and (b) the remaining generic machinery
still catches the data-path bugs.
"""

import pytest

from repro.bca import ALL_BUGS
from repro.catg import run_test
from repro.catg.tlm import run_tlm_verification
from repro.regression.testcases import TESTCASES, build_test
from repro.stbus import ArbitrationPolicy, NodeConfig


def hunt_configs():
    return [
        NodeConfig(n_initiators=6, n_targets=2,
                   arbitration=ArbitrationPolicy.LRU,
                   has_programming_port=True, name="abl-lru"),
        NodeConfig(n_initiators=6, n_targets=2,
                   arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                   has_programming_port=True, name="abl-prog"),
    ]


def detect(bug, with_arbitration_checker):
    for config in hunt_configs():
        for name in TESTCASES:
            result = run_test(
                config, build_test(name, config, 1), view="bca",
                bugs={bug},
                with_arbitration_checker=with_arbitration_checker,
            )
            if not result.passed:
                return True
    return False


def test_ablation_specific_checks_earn_their_keep(benchmark):
    def experiment():
        matrix = {}
        for bug in ALL_BUGS:
            matrix[bug] = {
                "full": detect(bug, with_arbitration_checker=True),
                "no_arb_checker": detect(bug, with_arbitration_checker=False),
            }
        return matrix

    matrix = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(f"{'bug':<30} {'full env':<10} {'without specific checks':<10}")
    for bug, row in matrix.items():
        print(f"{bug:<30} {'FOUND' if row['full'] else 'missed':<10} "
              f"{'FOUND' if row['no_arb_checker'] else 'missed'}")
    full = sum(r["full"] for r in matrix.values())
    without = sum(r["no_arb_checker"] for r in matrix.values())
    print(f"[ABL] full environment: {full}/5; without the node-specific "
          f"arbitration checker: {without}/5")
    assert full == 5
    # The pure-arbitration bugs are invisible without the specific checks
    # (the data-path bugs are still caught by the generic machinery).
    assert not matrix["lru-recency-stuck"]["no_arb_checker"]
    assert not matrix["prog-update-stale"]["no_arb_checker"]
    assert matrix["subword-lane-misplacement"]["no_arb_checker"]
    assert matrix["src-tag-truncation"]["no_arb_checker"]


def test_ablation_tlm_phase_as_early_gate(benchmark):
    """The TLM phase (future work) catches wrong-order and wrong-error
    behaviour before any pin-level run — but not pin-level-only bugs,
    which is why both phases exist."""

    def experiment():
        config = NodeConfig(n_initiators=3, n_targets=2, name="tlm-abl")
        rows = []
        for name in ("t02_random_uniform", "t03_out_of_order",
                     "t12_decode_errors"):
            result = run_tlm_verification(config,
                                          build_test(name, config, 1))
            rows.append((name, result.passed, result.fast.cycles))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for name, passed, cycles in rows:
        print(f"[ABL] tlm gate {name}: "
              f"{'PASS' if passed else 'FAIL'} in {cycles} cycles")
    assert all(passed for _, passed, _ in rows)
