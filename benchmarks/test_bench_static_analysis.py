"""Static-analysis benchmark: lift, equivalence-proof and exact-UNR
wall times over the configuration matrix.

The symbolic pass only earns its place in the flow if it stays cheap
next to simulation: a functional RTL≡BCA proof per port, for every
matrix configuration, should cost seconds — not the minutes a seeded
regression of the same matrix takes.  This harness times the three
engines separately over the full matrix and persists the rates to
``BENCH_static_analysis.json``.

Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_static_analysis.py -q
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.symbolic.equiv import check_functional_equivalence
from repro.analysis.symbolic.lift import lift_simulator
from repro.analysis.symbolic.reach import upgrade_unr_report
from repro.analysis.unr import analyze_unreachability
from repro.lint.runner import build_env
from repro.regression.configs import configuration_matrix

MATRIX = configuration_matrix()

#: filled by the timed phases, persisted by the final test
_RESULTS = {}


def test_bench_lift_phase():
    """Lift every process of every full environment, both views."""
    envs = [(config, view)
            for config in MATRIX for view in ("rtl", "bca")]
    built = []
    start = time.perf_counter()
    for config, view in envs:
        built.append(build_env(config, view).sim)
    build_s = time.perf_counter() - start
    start = time.perf_counter()
    n_processes = n_clean_assigns = 0
    for sim in built:
        report = lift_simulator(sim)
        n_processes += report.n_processes
        n_clean_assigns += sum(
            1 for proc in report.processes
            for assign in proc.assigns if assign.clean
        )
    lift_s = time.perf_counter() - start
    _RESULTS.update({
        "environments_built": len(envs),
        "env_build_seconds": round(build_s, 3),
        "processes_lifted": n_processes,
        "clean_assignments": n_clean_assigns,
        "lift_seconds": round(lift_s, 3),
        "lift_processes_per_second": round(n_processes / lift_s, 1),
    })
    print(f"\n[bench] lift: {n_processes} processes in {lift_s:.2f}s "
          f"({len(envs)} envs built in {build_s:.2f}s)")
    assert n_processes > 0
    # Seconds for the full matrix (generous ceiling for slow CI).
    assert lift_s < 60.0


def test_bench_equivalence_phase():
    """Per-port functional proof (both engines) over the full matrix."""
    start = time.perf_counter()
    n_ports = n_points = n_cycles = 0
    for config in MATRIX:
        ports, findings, _ = check_functional_equivalence(config)
        assert all(p.verdict == "EQUIVALENT" for p in ports), config.name
        n_ports += len(ports)
        n_points += sum(p.comb_points for p in ports)
        n_cycles += sum(p.lockstep_cycles for p in ports)
    equiv_s = time.perf_counter() - start
    _RESULTS.update({
        "configs_proven": len(MATRIX),
        "ports_proven": n_ports,
        "comb_points_enumerated": n_points,
        "lockstep_port_cycles": n_cycles,
        "equivalence_seconds": round(equiv_s, 3),
        "equivalence_ports_per_second": round(n_ports / equiv_s, 1),
    })
    print(f"[bench] equivalence: {n_ports} ports over {len(MATRIX)} "
          f"configs in {equiv_s:.2f}s ({n_points} enumerated points, "
          f"{n_cycles} lockstep port-cycles)")
    # Seconds, not minutes: the static proof must be far cheaper than a
    # regression of the same matrix (generous ceiling for slow CI).
    assert equiv_s < 120.0


def test_bench_reachability_phase():
    """Probe-based UNR plus the exact interval upgrade, full matrix."""
    start = time.perf_counter()
    n_bins = n_deltas = 0
    for config in MATRIX:
        report = analyze_unreachability(config)
        upgrade = upgrade_unr_report(report, config)
        assert upgrade.unknown_after == 0, config.name
        n_bins += len(report.verdicts)
        n_deltas += len(upgrade.deltas)
    reach_s = time.perf_counter() - start
    _RESULTS.update({
        "unr_bins_decided": n_bins,
        "unr_upgrade_deltas": n_deltas,
        "reachability_seconds": round(reach_s, 3),
        "reachability_bins_per_second": round(n_bins / reach_s, 1),
    })
    print(f"[bench] reachability: {n_bins} bins ({n_deltas} upgraded) "
          f"in {reach_s:.2f}s")
    assert reach_s < 30.0


def test_bench_record_results_json():
    """Persist the measured rates; runs last (file executes in order)."""
    required = {"lift_seconds", "equivalence_seconds",
                "reachability_seconds"}
    if not required.issubset(_RESULTS):
        pytest.skip("run the three phase benchmarks first")
    payload = {
        "harness": "benchmarks/test_bench_static_analysis.py",
        "matrix_size": len(MATRIX),
        "results": dict(sorted(_RESULTS.items())),
    }
    path = Path(__file__).with_name("BENCH_static_analysis.json")
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    assert json.loads(path.read_text(encoding="utf-8"))["results"]
