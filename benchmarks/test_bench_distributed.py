"""Distributed regression and result-cache benchmark.

Two claims get numbers here:

* **Scaling** — the same batch, executed serially and across 2- and
  4-worker loopback clusters.  Worker processes cost real spawn and
  framing overhead, so tiny batches are *not* expected to scale
  linearly; the bench records the curve and only asserts correctness
  (byte-identical summaries at every cluster size).

* **Cache leverage** — a warm content-addressed cache replays the
  whole batch without simulating a cycle.  That *is* asserted: the
  warm re-run must beat the cold run outright, and must register zero
  stores (every run served from the pool).

Results land in ``BENCH_distributed.json``.
"""

import json
import time
from pathlib import Path

from repro.regression import DistributedConfig, RegressionRunner
from repro.stbus import NodeConfig, ProtocolType

TESTS = ["t02_random_uniform", "t09_mixed_sizes"]
SEEDS = (1, 2)

#: The warm (all-hits) run must be at least this much faster than the
#: cold run that populated the cache.  Deliberately modest: the point
#: is "replay beats simulate", not a precise ratio.
MIN_WARM_SPEEDUP = 1.3


def _configs():
    return [NodeConfig(n_initiators=3, n_targets=2,
                       protocol_type=ProtocolType.T3, name="bench_dist")]


def _batch(workdir, workers=0, cache_dir=None):
    runner = RegressionRunner(
        _configs(), tests=TESTS, seeds=SEEDS, workdir=str(workdir),
        cache_dir=str(cache_dir) if cache_dir else None,
        distributed=(DistributedConfig(workers=workers)
                     if workers else None),
    )
    start = time.perf_counter()
    report = runner.run()
    return report, time.perf_counter() - start, runner


def test_distributed_and_cache_bench(tmp_path):
    walls = {}
    report_ref, walls["serial"], _ = _batch(tmp_path / "serial")
    for workers in (2, 4):
        report, walls[f"workers_{workers}"], _ = _batch(
            tmp_path / f"w{workers}", workers=workers)
        assert report.render() == report_ref.render()

    cold_report, cold_s, cold_runner = _batch(
        tmp_path / "cold", cache_dir=tmp_path / "cache")
    assert cold_runner.cache.stats.stores == cold_report.n_runs
    warm_report, warm_s, warm_runner = _batch(
        tmp_path / "warm", cache_dir=tmp_path / "cache")
    assert warm_runner.cache.stats.stores == 0
    assert warm_runner.cache.stats.hits == warm_report.n_runs
    assert warm_report.render() == cold_report.render()
    speedup = cold_s / warm_s

    payload = {
        "harness": "benchmarks/test_bench_distributed.py",
        "workload": {
            "configs": [cfg.name for cfg in _configs()],
            "tests": TESTS, "seeds": list(SEEDS),
            "n_runs": report_ref.n_runs,
        },
        "wall_seconds": {name: round(wall, 6)
                         for name, wall in sorted(walls.items())},
        "cache": {
            "cold_seconds": round(cold_s, 6),
            "warm_seconds": round(warm_s, 6),
            "warm_speedup": round(speedup, 2),
            "floor": MIN_WARM_SPEEDUP,
        },
    }
    path = Path(__file__).with_name("BENCH_distributed.json")
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print()
    for name, wall in sorted(walls.items()):
        print(f"[distributed] {name:<10} {wall:.3f}s")
    print(f"[cache] cold {cold_s:.3f}s  warm {warm_s:.3f}s "
          f"({speedup:.1f}x)")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache replay only {speedup:.2f}x faster than cold "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )
