"""E1 — Section 5: "More than 36 configurations of the Node have been tested."

Regenerates the paper's configuration sweep: the full >36-configuration
matrix, the twelve test cases, two seeds, both design views, VCD dumps and
automatic bus-accurate comparison.  Expected shape (the paper's implicit
table): every configuration passes on both views, reaches 100% functional
coverage (equal across views) and 100% port alignment — i.e. every BCA
model signs off.
"""

import pytest

from repro.regression import RegressionRunner, configuration_matrix


def run_full_regression(workdir):
    configs = configuration_matrix()
    assert len(configs) > 36
    runner = RegressionRunner(configs, seeds=(1, 2), workdir=str(workdir))
    return runner.run()


def test_e1_full_configuration_matrix(benchmark, tmp_path):
    report = benchmark.pedantic(
        run_full_regression, args=(tmp_path,), rounds=1, iterations=1
    )
    print()
    print(report.render())
    n_configs = len(report.configs)
    n_signed = sum(1 for c in report.configs if c.signed_off)
    benchmark.extra_info["configurations"] = n_configs
    benchmark.extra_info["signed_off"] = n_signed
    benchmark.extra_info["runs"] = report.n_runs
    print(f"[E1] paper: >36 configurations tested, all delivered")
    print(f"[E1] ours:  {n_configs} configurations, "
          f"{n_signed} signed off, {report.n_runs} model runs")
    # The reproduction claim: every configuration verifies and aligns.
    assert n_configs > 36
    assert report.all_signed_off, report.render()


def test_e1_config_files_drive_the_tool(benchmark, tmp_path):
    """The regression tool works from a configuration *directory* —
    "it's sufficient to indicate the directory" (Section 5)."""
    from repro.regression import load_config_dir, save_config_dir

    def run_from_dir():
        configs = configuration_matrix(small=True)[:2]
        save_config_dir(configs, str(tmp_path / "cfgs"))
        loaded = load_config_dir(str(tmp_path / "cfgs"))
        runner = RegressionRunner(loaded, tests=["t02_random_uniform"],
                                  seeds=(1,), workdir=str(tmp_path / "out"))
        return runner.run()

    report = benchmark.pedantic(run_from_dir, rounds=1, iterations=1)
    assert all(c.all_passed for c in report.configs)
