"""E8 — Section 5: the test cases cover "all main features of the node
such as out of order traffic or latency based arbitration".

Regenerated behavioural tables:

* out-of-order traffic — Type III responses overtake across targets of
  different speed, Type II never does (same stimulus);
* each arbitration policy produces its characteristic grant pattern under
  saturated contention (bandwidth shares, latency deadlines, LRU
  fairness, strict priority);
* the programming port visibly flips the winner mid-run.
"""

import pytest

from repro.bca.fast import FastBcaSim, run_fast
from repro.catg import run_test, VerificationEnv
from repro.regression.testcases import build_test
from repro.stbus import (
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    ProtocolType,
    Transaction,
)


def ooo_experiment():
    rows = []
    for protocol in (ProtocolType.T2, ProtocolType.T3):
        config = NodeConfig(n_initiators=1, n_targets=3,
                            protocol_type=protocol, name=f"ooo-{protocol}")
        result = run_fast(config, build_test("t03_out_of_order", config, 4))
        assert not result.timed_out
        order = [t.tid for t in result.completed]
        reordered = sum(
            1 for a, b in zip(order, order[1:]) if b < a
        )
        rows.append((protocol, len(result.completed), reordered))
    return rows


def test_e8_out_of_order_only_on_type3(benchmark):
    rows = benchmark.pedantic(ooo_experiment, rounds=1, iterations=1)
    print()
    for protocol, n, reordered in rows:
        print(f"[E8] {protocol}: {n} transactions, "
              f"{reordered} response reorderings observed")
    t2 = next(r for r in rows if r[0] is ProtocolType.T2)
    t3 = next(r for r in rows if r[0] is ProtocolType.T3)
    assert t2[2] == 0, "Type II must keep responses ordered"
    assert t3[2] > 0, "Type III with mixed-speed targets must reorder"


def saturated_share(policy, **params):
    """Run saturated 3-way contention; return each initiator's share of
    the first 40 completed transactions (while everyone still has work,
    so the bus — not the programs — is the bottleneck)."""
    config = NodeConfig(
        n_initiators=3, n_targets=1, arbitration=policy, name="share",
        max_outstanding=4, **params,
    )
    # 4-cell packets keep the request bus busy; deep credit keeps every
    # initiator requesting back to back.
    programs = [
        [(Transaction(Opcode.store(16), 64 * ((i * 60 + k) % 60),
                      data=bytes([i] * 16), initiator=i), 0)
         for k in range(60)]
        for i in range(3)
    ]
    sim = FastBcaSim(config, programs, [1])
    result = sim.run(max_cycles=8000)
    window = sorted(result.completed, key=lambda t: t.response_end)[:40]
    shares = [0, 0, 0]
    for txn in window:
        shares[txn.initiator] += 1
    total = sum(shares) or 1
    return [s / total for s in shares]


def test_e8_arbitration_policy_shapes(benchmark):
    def experiment():
        return {
            "fixed": saturated_share(ArbitrationPolicy.FIXED_PRIORITY),
            "lru": saturated_share(ArbitrationPolicy.LRU),
            "round_robin": saturated_share(ArbitrationPolicy.ROUND_ROBIN),
            "bandwidth": saturated_share(
                ArbitrationPolicy.BANDWIDTH_LIMITED,
                bandwidth_allocations=[8, 2, 2], bandwidth_window=16,
            ),
            "latency": saturated_share(
                ArbitrationPolicy.LATENCY_BASED,
                latency_budgets=[64, 4, 64],
            ),
        }

    shares = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for policy, share in shares.items():
        pretty = " / ".join(f"{s * 100:4.1f}%" for s in share)
        print(f"[E8] {policy:<12} shares: {pretty}")
    # Fixed priority starves the others almost completely.
    assert shares["fixed"][0] > 0.8
    # LRU and round robin are fair within a few percent.
    for policy in ("lru", "round_robin"):
        assert max(shares[policy]) - min(shares[policy]) < 0.15, policy
    # Bandwidth allocation 8/2/2 gives initiator 0 the biggest share.
    assert shares["bandwidth"][0] > shares["bandwidth"][1]
    assert shares["bandwidth"][0] > shares["bandwidth"][2]
    # The tight latency budget makes initiator 1 win more than its
    # fixed-priority share (it keeps hitting its deadline first).
    assert shares["latency"][1] > 0.3


def test_e8_programming_port_flips_the_winner(benchmark):
    """T07's mechanism in isolation: reprogramming priorities mid-test
    changes which initiator the node favours."""

    def experiment():
        config = NodeConfig(
            n_initiators=2, n_targets=1,
            arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
            has_programming_port=True, priorities=[10, 1], name="flip",
        )
        env = VerificationEnv(config)
        test = build_test("t07_priority_reprogramming", config, 1)
        env.load_test(test)
        result = env.run()
        assert result.passed, result.report.violations[:4]
        return result

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\n[E8] t07 with reprogramming: PASS, "
          f"{result.dut_stats['req_cells']} request cells, "
          f"arbitration reference checker silent")
    assert result.coverage["programming"].bins["write"] > 0
