"""E7 — Section 4: code coverage, an RTL-only metric.

"The code coverage ... can be applied only in the RTL verification since
no tool is able to generate this metrics for SystemC.  The code coverage
metrics we use are line, branch and statement coverage.  Our goal ... is
... 100% of justified code for the line coverage, while in general we
accept less for the others."

Regenerated table: line/branch/statement coverage of the RTL node under
the full twelve-test suite, the asymmetry (BCA run yields no code
coverage), and the suite-size ablation (more tests -> more code covered).
"""

import os

import pytest

from repro.catg import CodeCoverage, run_test
from repro.regression.testcases import TESTCASES, build_test
from repro.stbus import ArbitrationPolicy, NodeConfig, ProtocolType


def full_suite_code_coverage():
    # Two configurations so both protocol types and the programming port
    # exercise their RTL branches ("justified code").
    configs = [
        NodeConfig(n_initiators=3, n_targets=2,
                   protocol_type=ProtocolType.T3,
                   arbitration=ArbitrationPolicy.LRU, name="cc-t3"),
        NodeConfig(n_initiators=3, n_targets=2, pipe_depth=2,
                   arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                   has_programming_port=True, name="cc-prog"),
    ]
    with CodeCoverage() as tracer:
        for config in configs:
            for name in TESTCASES:
                result = run_test(config, build_test(name, config, 1))
                assert result.passed
    return tracer.report()


def test_e7_rtl_line_branch_statement_coverage(benchmark):
    report = benchmark.pedantic(full_suite_code_coverage, rounds=1,
                                iterations=1)
    print()
    print(report.render())
    node = next(cov for path, cov in report.files.items()
                if path.endswith("node.py"))
    print(f"[E7] paper: goal 100% justified line coverage on RTL; "
          "lower accepted for branch/statement")
    print(f"[E7] ours (rtl/node.py): line {node.line_percent:.1f}%, "
          f"branch {node.branch_percent:.1f}%, "
          f"statement {node.statement_percent:.1f}%")
    benchmark.extra_info["node_line_percent"] = node.line_percent
    # The suite must exercise the node thoroughly; the remaining lines are
    # the "justified" ones (defensive paths the clean harness can't hit).
    assert node.line_percent > 85.0
    assert node.branch_percent > 60.0
    assert node.statement_percent > 85.0


def test_e7_bca_view_reports_no_code_coverage(benchmark):
    """The paper's asymmetry: no code-coverage tool for the (SystemC)
    BCA model; our tracer is scoped to the RTL sources the same way."""

    def bca_run():
        config = NodeConfig(n_initiators=2, n_targets=2, name="cc-bca")
        with CodeCoverage() as tracer:
            run_test(config, build_test("t02_random_uniform", config, 1),
                     view="bca")
        return tracer.report()

    report = benchmark.pedantic(bca_run, rounds=1, iterations=1)
    print(f"\n[E7] BCA run traced {len(report.files)} RTL files "
          "(expected 0 — code coverage is RTL-only)")
    assert not report.files


def test_e7_more_tests_cover_more_code(benchmark):
    """Ablation: the directed bring-up test alone exercises much less of
    the RTL than the random suite — the coverage argument for CATG."""

    def ablation():
        config = NodeConfig(n_initiators=3, n_targets=2,
                            arbitration=ArbitrationPolicy.LRU,
                            protocol_type=ProtocolType.T3, name="cc-abl")
        points = []
        for suite in (["t01_sanity_write_read"],
                      ["t01_sanity_write_read", "t02_random_uniform"],
                      list(TESTCASES)):
            with CodeCoverage() as tracer:
                for name in suite:
                    run_test(config, build_test(name, config, 1))
            report = tracer.report()
            node = next(c for p, c in report.files.items()
                        if p.endswith("node.py"))
            points.append((len(suite), node.line_percent))
        return points

    points = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print()
    for n_tests, percent in points:
        print(f"[E7] {n_tests:2d} test(s): {percent:5.1f}% of rtl/node.py lines")
    percents = [p for _, p in points]
    assert percents[0] < percents[-1]
    assert percents == sorted(percents)
