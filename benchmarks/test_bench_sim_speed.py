"""E5 — Section 1: "The fast simulation of BCA models permits to fast
find the optimized configuration."

Measures simulated cycles per wall-clock second for the three ways a node
model can run:

* RTL view, pin-level (the "HDL simulation" of the paper),
* BCA view, pin-level (co-simulated for verification/alignment), and
* BCA view, standalone fast mode (the "native SystemC" execution that
  motivates BCA-based architecture exploration).

Expected shape: standalone BCA is the fastest; pin-level BCA is at least
as fast as pin-level RTL.  (The paper quotes no factor; the 2004 gap
between compiled SystemC and event-driven RTL simulation was larger than
a pure-Python kernel can show.)
"""

import pytest

from repro.bca import BcaNode
from repro.bca.fast import FastBcaSim
from repro.catg.bfm import InitiatorBfm
from repro.catg.target import TargetHarness
from repro.kernel import Module, Simulator
from repro.regression.testcases import build_test
from repro.rtl import RtlNode
from repro.stbus import ArbitrationPolicy, NodeConfig, StbusPort

CONFIG = NodeConfig(n_initiators=4, n_targets=4,
                    arbitration=ArbitrationPolicy.LRU, name="speed")
REPEAT = 8  # program repetitions to get a few thousand cycles per run


def make_pin_tb(node_cls):
    test = build_test("t10_hotspot", CONFIG, 1)
    sim = Simulator()
    top = Module(sim, "tb")
    init_ports = [StbusPort(top, f"init{i}", 32) for i in range(4)]
    targ_ports = [StbusPort(top, f"targ{t}", 32) for t in range(4)]
    node_cls(sim, "dut", CONFIG, init_ports, targ_ports, parent=top)
    bfms = []
    for i in range(4):
        bfm = InitiatorBfm(sim, f"bfm{i}", init_ports[i],
                           CONFIG.protocol_type, parent=top)
        bfm.load_program(list(test.programs[i]) * REPEAT)
        bfms.append(bfm)
    for t in range(4):
        TargetHarness(sim, f"mem{t}", targ_ports[t], CONFIG.protocol_type,
                      latency=test.target_latencies[t], seed=0xC0DE + t,
                      parent=top)
    sim.elaborate()
    return sim, bfms


def run_pin(node_cls):
    sim, bfms = make_pin_tb(node_cls)
    cycles = 0
    while not all(b.done for b in bfms) and cycles < 100000:
        sim.step()
        cycles += 1
    for _ in range(50):
        sim.step()
    return cycles


def run_fast_mode():
    test = build_test("t10_hotspot", CONFIG, 1)
    test.programs = [list(p) * REPEAT for p in test.programs]
    sim = FastBcaSim(CONFIG, test.programs, test.target_latencies)
    return sim.run().cycles


#: filled by the timed benchmarks, summarized by the final test
_RESULTS = {}


def test_e5_rtl_pin_level_speed(benchmark):
    cycles = benchmark(run_pin, RtlNode)
    _RESULTS["rtl"] = cycles / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = _RESULTS["rtl"]


def test_e5_bca_pin_level_speed(benchmark):
    cycles = benchmark(run_pin, BcaNode)
    _RESULTS["bca_pin"] = cycles / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = _RESULTS["bca_pin"]


def test_e5_bca_standalone_speed(benchmark):
    cycles = benchmark(run_fast_mode)
    _RESULTS["bca_fast"] = cycles / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = _RESULTS["bca_fast"]


def test_e5_speed_ordering(benchmark):
    def summarize():
        if not {"rtl", "bca_pin", "bca_fast"}.issubset(_RESULTS):
            pytest.skip("run the three E5 speed benchmarks first")
        return dict(_RESULTS)

    rates = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print()
    print(f"[E5] RTL pin-level:   {rates['rtl']:9.0f} cycles/s")
    print(f"[E5] BCA pin-level:   {rates['bca_pin']:9.0f} cycles/s "
          f"({rates['bca_pin'] / rates['rtl']:.2f}x RTL)")
    print(f"[E5] BCA standalone:  {rates['bca_fast']:9.0f} cycles/s "
          f"({rates['bca_fast'] / rates['rtl']:.2f}x RTL)")
    print("[E5] paper: BCA simulation is fast enough for architecture "
          "exploration; shape reproduced (standalone BCA fastest)")
    # The shape: standalone BCA beats pin-level RTL decisively; pin-level
    # BCA is not slower than pin-level RTL (tolerate 10% timing noise).
    assert rates["bca_fast"] > rates["rtl"] * 1.3
    assert rates["bca_pin"] > rates["rtl"] * 0.9
