"""E5 — Section 1: "The fast simulation of BCA models permits to fast
find the optimized configuration."

Measures simulated cycles per wall-clock second for the three ways a node
model can run:

* RTL view, pin-level (the "HDL simulation" of the paper),
* BCA view, pin-level (co-simulated for verification/alignment), and
* BCA view, standalone fast mode (the "native SystemC" execution that
  motivates BCA-based architecture exploration).

Expected shape: standalone BCA is the fastest; pin-level BCA is at least
as fast as pin-level RTL.  (The paper quotes no factor; the 2004 gap
between compiled SystemC and event-driven RTL simulation was larger than
a pure-Python kernel can show.)
"""

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.bca import BcaNode
from repro.bca.fast import FastBcaSim
from repro.catg.bfm import InitiatorBfm
from repro.catg.target import TargetHarness
from repro.kernel import Module, Simulator
from repro.kernel.compiled import CompiledKernel, compile_simulator
from repro.regression import RegressionRunner
from repro.regression.testcases import build_test
from repro.rtl import RtlNode
from repro.stbus import ArbitrationPolicy, NodeConfig, StbusPort

CONFIG = NodeConfig(n_initiators=4, n_targets=4,
                    arbitration=ArbitrationPolicy.LRU, name="speed")
REPEAT = 8  # program repetitions to get a few thousand cycles per run


def make_pin_tb(node_cls):
    test = build_test("t10_hotspot", CONFIG, 1)
    sim = Simulator()
    top = Module(sim, "tb")
    init_ports = [StbusPort(top, f"init{i}", 32) for i in range(4)]
    targ_ports = [StbusPort(top, f"targ{t}", 32) for t in range(4)]
    node_cls(sim, "dut", CONFIG, init_ports, targ_ports, parent=top)
    bfms = []
    for i in range(4):
        bfm = InitiatorBfm(sim, f"bfm{i}", init_ports[i],
                           CONFIG.protocol_type, parent=top)
        bfm.load_program(list(test.programs[i]) * REPEAT)
        bfms.append(bfm)
    for t in range(4):
        TargetHarness(sim, f"mem{t}", targ_ports[t], CONFIG.protocol_type,
                      latency=test.target_latencies[t], seed=0xC0DE + t,
                      parent=top)
    sim.elaborate()
    return sim, bfms


#: kernel counter totals of the last pin-level run per view, keyed
#: "rtl" / "bca_pin"; persisted in the JSON alongside the rates so the
#: recorded cycles/s always come with the work they measured.
_KERNEL_TOTALS = {}

_VIEW_LABEL = {"RtlNode": "rtl", "BcaNode": "bca_pin"}


def run_pin(node_cls):
    sim, bfms = make_pin_tb(node_cls)
    cycles = 0
    while not all(b.done for b in bfms) and cycles < 100000:
        sim.step()
        cycles += 1
    for _ in range(50):
        sim.step()
    _KERNEL_TOTALS[_VIEW_LABEL[node_cls.__name__]] = sim.stats_snapshot()
    return cycles


def run_fast_mode():
    test = build_test("t10_hotspot", CONFIG, 1)
    test.programs = [list(p) * REPEAT for p in test.programs]
    sim = FastBcaSim(CONFIG, test.programs, test.target_latencies)
    return sim.run().cycles


def run_pin_compiled(node_cls):
    """run_pin with the compiled levelized kernel attached."""
    sim, bfms = make_pin_tb(node_cls)
    compile_simulator(sim)
    cycles = 0
    while not all(b.done for b in bfms) and cycles < 100000:
        sim.step()
        cycles += 1
    for _ in range(50):
        sim.step()
    label = _VIEW_LABEL[node_cls.__name__] + "_compiled"
    _KERNEL_TOTALS[label] = sim.stats_snapshot()
    return cycles


# ---------------------------------------------------------------------------
# Kernel-bound comb-network workload (levelized-kernel showcase).
#
# The node testbench above spends most of its wall time inside process
# bodies (BFMs, monitors, scoreboard hooks), so retiring the delta loop
# moves its rate only modestly — recorded honestly below.  This workload
# is the opposite shape: re-convergent combinational "triangles" where
# the process at depth d reads the stimulus AND every previous row, so
# the interpreted delta loop re-runs O(depth^2/2) activations per cycle
# while the levelized kernel runs each of the depth processes exactly
# once — scheduling, not process bodies, dominates.
# ---------------------------------------------------------------------------

NET_CONES = 6
NET_DEPTH = 16


def make_comb_network(cones=NET_CONES, depth=NET_DEPTH):
    sim = Simulator()
    stims = []
    for c in range(cones):
        stim = sim.signal(f"net.c{c}.stim", width=16)
        rows = [sim.signal(f"net.c{c}.r{d}", width=16) for d in range(depth)]
        stims.append(stim)
        for d in range(depth):
            inputs = (stim,) + tuple(rows[:d])
            out = rows[d]

            def proc(inputs=inputs, out=out):
                acc = 1
                for sig in inputs:
                    acc = (acc + sig.value) ^ (acc >> 3)
                out.drive(acc & 0xFFFF)

            sim.add_comb(proc, inputs, name=f"net.c{c}.p{d}")
    state = {"n": 0}

    def tick():
        n = state["n"]
        state["n"] = n + 1
        # One cone active per cycle; the other cones' levels stay clean,
        # which is what the dirty-cone ablation measures.
        stims[n % cones].drive((n * 2654435761 + 1) & 0xFFFF)

    sim.add_clocked(tick, name="net.tick", reads=(), writes=tuple(stims))
    return sim


def _net_rate(kernel, cycles=300, rounds=3):
    """Best-of-N cycles/s of the comb network under one engine."""
    best = None
    for _ in range(rounds):
        sim = make_comb_network()
        sim.elaborate()
        if kernel != "delta":
            CompiledKernel(
                sim, dirty_cones=(kernel != "compiled_no_dirty")
            ).attach()
        start = time.perf_counter()
        sim.run(cycles)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    checksum = sum(sig.value for sig in sim.signals)
    return cycles / best, checksum


#: filled by the timed benchmarks, summarized by the final test
_RESULTS = {}


def test_e5_rtl_pin_level_speed(benchmark):
    cycles = benchmark(run_pin, RtlNode)
    _RESULTS["rtl"] = cycles / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = _RESULTS["rtl"]


def test_e5_bca_pin_level_speed(benchmark):
    cycles = benchmark(run_pin, BcaNode)
    _RESULTS["bca_pin"] = cycles / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = _RESULTS["bca_pin"]


def test_e5_bca_standalone_speed(benchmark):
    cycles = benchmark(run_fast_mode)
    _RESULTS["bca_fast"] = cycles / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = _RESULTS["bca_fast"]


def test_e5_rtl_pin_compiled_speed(benchmark):
    cycles = benchmark(run_pin_compiled, RtlNode)
    _RESULTS["rtl_compiled"] = cycles / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = _RESULTS["rtl_compiled"]


def test_e5_bca_pin_compiled_speed(benchmark):
    cycles = benchmark(run_pin_compiled, BcaNode)
    _RESULTS["bca_pin_compiled"] = cycles / benchmark.stats["mean"]
    benchmark.extra_info["cycles_per_second"] = _RESULTS["bca_pin_compiled"]


def test_e5_compiled_floor():
    """Compiled >= 3x interpreted on the kernel-bound comb network.

    Measured back-to-back in this process (same interpreter, same
    machine), so the ratio floor is machine-independent.  Also records
    the dirty-cone ablation: compiled with every level re-evaluated
    every cycle sits between the two.
    """
    delta_rate, delta_sum = _net_rate("delta")
    compiled_rate, compiled_sum = _net_rate("compiled")
    nodirty_rate, nodirty_sum = _net_rate("compiled_no_dirty")
    assert compiled_sum == delta_sum == nodirty_sum  # same fixpoints
    _RESULTS["comb_network_delta"] = delta_rate
    _RESULTS["comb_network_compiled"] = compiled_rate
    _RESULTS["comb_network_compiled_no_dirty"] = nodirty_rate
    print()
    print(f"[E5] comb net delta:              {delta_rate:9.0f} cycles/s")
    print(f"[E5] comb net compiled:           {compiled_rate:9.0f} cycles/s "
          f"({compiled_rate / delta_rate:.2f}x delta)")
    print(f"[E5] comb net compiled, no dirty: {nodirty_rate:9.0f} cycles/s "
          f"({nodirty_rate / delta_rate:.2f}x delta)")
    assert compiled_rate >= 3.0 * delta_rate
    # The ablation must show dirty-cone scheduling is load-bearing on
    # idle cones: full compiled beats compiled-without-skipping.
    assert compiled_rate > nodirty_rate


def test_e5_speed_ordering(benchmark):
    def summarize():
        if not {"rtl", "bca_pin", "bca_fast"}.issubset(_RESULTS):
            pytest.skip("run the three E5 speed benchmarks first")
        return dict(_RESULTS)

    rates = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print()
    print(f"[E5] RTL pin-level:   {rates['rtl']:9.0f} cycles/s")
    print(f"[E5] BCA pin-level:   {rates['bca_pin']:9.0f} cycles/s "
          f"({rates['bca_pin'] / rates['rtl']:.2f}x RTL)")
    print(f"[E5] BCA standalone:  {rates['bca_fast']:9.0f} cycles/s "
          f"({rates['bca_fast'] / rates['rtl']:.2f}x RTL)")
    print("[E5] paper: BCA simulation is fast enough for architecture "
          "exploration; shape reproduced (standalone BCA fastest)")
    # The shape: standalone BCA beats pin-level RTL decisively; pin-level
    # BCA is not slower than pin-level RTL (tolerate 10% timing noise).
    assert rates["bca_fast"] > rates["rtl"] * 1.3
    assert rates["bca_pin"] > rates["rtl"] * 0.9


# ---------------------------------------------------------------------------
# Regression throughput: serial vs --jobs N (the parallel batch engine).
# ---------------------------------------------------------------------------

#: Kernel cycles/s of the seed commit, measured with this same harness
#: before the fast-path/VCD work landed (median of 10 run_pin(RtlNode)
#: repetitions on the reference container).  Kept here so the JSON always
#: records what the optimization is being compared against.
PRE_PR_BASELINE = {"rtl_pin_cycles_per_second": 3862}

REG_CONFIGS = [
    NodeConfig(n_initiators=2, n_targets=2, name="bench_a"),
    NodeConfig(n_initiators=3, n_targets=2,
               arbitration=ArbitrationPolicy.LRU, name="bench_b"),
]
REG_TESTS = ["t01_sanity_write_read", "t02_random_uniform",
             "t06_lru_fairness", "t10_hotspot"]


def _available_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _run_regression(jobs, workdir):
    runner = RegressionRunner(REG_CONFIGS, tests=REG_TESTS, seeds=(1,),
                              workdir=str(workdir), jobs=jobs)
    return runner.run()


def _median_wall(jobs, tmp_path, rounds=3):
    times = []
    for i in range(rounds):
        workdir = tmp_path / f"j{jobs}_r{i}"
        start = time.perf_counter()
        report = _run_regression(jobs, workdir)
        times.append(time.perf_counter() - start)
        assert report.all_signed_off is not None  # report assembled
    return statistics.median(times), report


def test_e5_regression_throughput(tmp_path):
    """Serial vs parallel batch over the same work list.

    The speedup assertion is core-count-aware: on a single-CPU box a
    process pool cannot beat serial, so we only require that it is not
    pathologically slower; with four or more CPUs we require a real
    (>= 2x) speedup, per the engine's design goal.
    """
    cpus = _available_cpus()
    jobs = min(4, cpus) if cpus > 1 else 2
    serial_s, serial_report = _median_wall(1, tmp_path)
    parallel_s, parallel_report = _median_wall(jobs, tmp_path)
    n_runs = serial_report.n_runs
    _RESULTS["regression_serial_runs_per_second"] = n_runs / serial_s
    _RESULTS["regression_parallel_runs_per_second"] = n_runs / parallel_s
    _RESULTS["regression_jobs"] = jobs
    _RESULTS["cpus"] = cpus
    print()
    print(f"[E5] regression serial:   {n_runs / serial_s:6.1f} runs/s "
          f"({serial_s:.2f}s for {n_runs} runs)")
    print(f"[E5] regression jobs={jobs}:   {n_runs / parallel_s:6.1f} runs/s "
          f"({parallel_s:.2f}s, {cpus} cpu(s))")
    # Observability first: identical summary regardless of jobs.
    assert serial_report.render() == parallel_report.render()
    if cpus >= 4:
        assert serial_s / parallel_s >= 2.0
    elif cpus >= 2:
        assert serial_s / parallel_s >= 1.2
    else:
        # One CPU: the pool only adds overhead; bound it.
        assert parallel_s <= serial_s * 2.0


def test_e5_record_results_json():
    """Persist the measured rates next to the benchmarks for the docs.

    Runs last (pytest executes this file in order); regenerate with
    ``PYTHONPATH=src python -m pytest benchmarks/test_bench_sim_speed.py``.
    """
    required = {"regression_serial_runs_per_second",
                "regression_parallel_runs_per_second"}
    if not required.issubset(_RESULTS):
        pytest.skip("run the throughput benchmarks first")
    payload = {
        "harness": "benchmarks/test_bench_sim_speed.py",
        "pre_pr_baseline": PRE_PR_BASELINE,
        "results": {
            key: (round(value, 1) if isinstance(value, float) else value)
            for key, value in sorted(_RESULTS.items())
        },
        "kernel_totals": {
            view: dict(stats)
            for view, stats in sorted(_KERNEL_TOTALS.items())
        },
    }
    if "rtl_compiled" in _RESULTS:
        # The compiled-kernel block: the stock node testbench (process-
        # body-bound, modest gain, reported honestly) and the kernel-
        # bound comb network where levelization actually pays.
        payload["kernel_compiled"] = {
            "kernel": "compiled",
            "rtl_pin_cycles_per_second": round(_RESULTS["rtl_compiled"], 1),
            "speedup_vs_delta": round(
                _RESULTS["rtl_compiled"] / _RESULTS["rtl"], 2
            ) if _RESULTS.get("rtl") else None,
            "comb_network": {
                key: round(_RESULTS[f"comb_network_{key}"], 1)
                for key in ("delta", "compiled", "compiled_no_dirty")
                if f"comb_network_{key}" in _RESULTS
            },
        }
    path = Path(__file__).with_name("BENCH_sim_speed.json")
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    assert json.loads(path.read_text(encoding="utf-8"))["results"]
