"""Incremental-regression benchmark: what one process edit costs.

The ISSUE's quantitative claim: after editing **one** process, an
incremental batch re-runs only the entries whose fan-out cone contains
it.  The workload is a four-configuration matrix where exactly one
configuration has a programming port; the edit lands in
``ProgrammingMaster._clk``, so only that configuration's two views are
affected — a 2/8 = 25% re-run fraction, asserted against a 50% floor.

The edit is applied to a *copy* of the package tree and both batches
run as subprocesses against it (an in-process run cannot re-import an
edited module).  Results land in ``BENCH_incremental.json``.
"""

import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

from repro.regression.configs import save_config_dir
from repro.stbus import ArbitrationPolicy, NodeConfig, ProtocolType

REPO_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src"))

CLK_MARKER = "    def _clk(self) -> None:"

#: Hard floor from the ISSUE: a one-process edit must re-run strictly
#: less than half the batch.
MAX_RERUN_FRACTION = 0.5


def _configs():
    return [
        NodeConfig(n_initiators=2, n_targets=2,
                   protocol_type=ProtocolType.T3, name="incr_a"),
        NodeConfig(n_initiators=3, n_targets=2,
                   protocol_type=ProtocolType.T3, name="incr_b"),
        NodeConfig(n_initiators=2, n_targets=3,
                   protocol_type=ProtocolType.T3, name="incr_c"),
        NodeConfig(n_initiators=2, n_targets=2,
                   protocol_type=ProtocolType.T3,
                   arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                   has_programming_port=True, name="incr_prog"),
    ]


def _edit_prog_master(src):
    """AST-visible, behavior-neutral edit to ``ProgrammingMaster._clk``
    — registered only by designs with a programming port."""
    path = os.path.join(src, "repro", "catg", "prog.py")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert text.count(CLK_MARKER) == 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.replace(
            CLK_MARKER, CLK_MARKER + "\n        _bench_probe = 0", 1))


def _run_batch(src, cfg_dir, workdir, cache_dir, metrics):
    env = dict(os.environ)
    env["PYTHONPATH"] = src
    env.pop("REPRO_CACHE_DIR", None)
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.regression", str(cfg_dir),
         "--workdir", str(workdir),
         "--tests", "t01_sanity_write_read", "--seeds", "1",
         "--skip-lint", "--cache-dir", str(cache_dir),
         "--incremental", "--metrics-out", str(metrics)],
        capture_output=True, text=True, env=env)
    wall = time.perf_counter() - start
    assert proc.returncode in (0, 1), proc.stdout + proc.stderr
    with open(metrics, "r", encoding="utf-8") as handle:
        return json.load(handle)["batch"], wall


def test_incremental_rerun_fraction(tmp_path):
    src = str(tmp_path / "pkg")
    shutil.copytree(
        REPO_SRC, src,
        ignore=shutil.ignore_patterns("__pycache__", "*.pyc"))
    cfg_dir = tmp_path / "cfg"
    save_config_dir(_configs(), str(cfg_dir))

    cold, cold_s = _run_batch(src, cfg_dir, tmp_path / "cold",
                              tmp_path / "cache", tmp_path / "cold.json")
    n_runs = sum(cold["cache"][name] for name in ("hits", "misses"))
    assert cold["cache"]["misses"] == n_runs  # nothing pre-warmed

    _edit_prog_master(src)
    warm, warm_s = _run_batch(src, cfg_dir, tmp_path / "warm",
                              tmp_path / "cache", tmp_path / "warm.json")
    rerun = warm["cache"]["misses"]
    fraction = rerun / n_runs

    payload = {
        "harness": "benchmarks/test_bench_incremental.py",
        "workload": {
            "configs": [cfg.name for cfg in _configs()],
            "tests": ["t01_sanity_write_read"], "seeds": [1],
            "n_runs": n_runs,
            "edit": "catg/prog.py ProgrammingMaster._clk "
                    "(one-line behavior-neutral insert)",
        },
        "incremental": {
            "rerun_jobs": rerun,
            "rerun_fraction": round(fraction, 4),
            "floor": MAX_RERUN_FRACTION,
            "cold_seconds": round(cold_s, 6),
            "warm_seconds": round(warm_s, 6),
            "impact_counters": cold["impact"],
        },
    }
    path = Path(__file__).with_name("BENCH_incremental.json")
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")
    print()
    print(f"[incremental] edit re-ran {rerun}/{n_runs} jobs "
          f"({fraction:.0%}); cold {cold_s:.3f}s warm {warm_s:.3f}s")
    # Only the programming-port configuration's two views may re-run.
    assert rerun == 2, warm["cache"]
    assert fraction < MAX_RERUN_FRACTION, (
        f"one-process edit re-ran {fraction:.0%} of the batch "
        f"(floor {MAX_RERUN_FRACTION:.0%})"
    )
