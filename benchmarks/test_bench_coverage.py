"""E4 — Section 4: functional coverage, equal on both views, 100% goal.

"The functional coverage is built in the common verification environment
and it can be obtained in both RTL and BCA models (of course they must be
equal running the same tests)" and "Our goal for the verification of the
blocks is 100% of the functional coverage defined".

Regenerated series: coverage vs number of (test, seed) runs — the
convergence curve behind Figure 4's "full coverage" gate — plus the
per-run equality check between the views.
"""

import pytest

from repro.catg import build_node_coverage, run_test
from repro.regression.testcases import TESTCASES, build_test
from repro.stbus import ArbitrationPolicy, NodeConfig, ProtocolType


def coverage_experiment():
    config = NodeConfig(
        n_initiators=3, n_targets=2, protocol_type=ProtocolType.T3,
        arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
        has_programming_port=True, name="coverage",
    )
    merged = {view: build_node_coverage(config) for view in ("rtl", "bca")}
    curve = []
    equal_every_run = True
    runs = 0
    for seed in (1, 2):
        for name in TESTCASES:
            per_view = {}
            for view in ("rtl", "bca"):
                result = run_test(config, build_test(name, config, seed),
                                  view=view)
                assert result.passed, (view, name, seed)
                per_view[view] = result.coverage
                merged[view].merge(result.coverage)
            if per_view["rtl"].hit_signature() != \
                    per_view["bca"].hit_signature():
                equal_every_run = False
            runs += 1
            curve.append((runs, merged["rtl"].percent))
    return config, merged, curve, equal_every_run


def test_e4_coverage_reaches_100_and_views_agree(benchmark):
    config, merged, curve, equal = benchmark.pedantic(
        coverage_experiment, rounds=1, iterations=1
    )
    print()
    print("[E4] coverage convergence (runs -> % of defined bins):")
    last = None
    for runs, percent in curve:
        if percent != last:
            print(f"       {runs:3d} runs: {percent:6.2f}%")
            last = percent
    print(f"[E4] paper: goal 100% functional coverage, equal across views")
    print(f"[E4] ours:  rtl {merged['rtl'].percent:.1f}% / "
          f"bca {merged['bca'].percent:.1f}%, per-run equality: {equal}")
    benchmark.extra_info["final_coverage"] = merged["rtl"].percent
    assert equal, "views disagreed on coverage for at least one run"
    assert merged["rtl"].percent == 100.0, merged["rtl"].holes()
    assert merged["bca"].percent == 100.0
    assert merged["rtl"].hit_signature() == merged["bca"].hit_signature()
    # The curve is monotone and needs more than one test to converge —
    # the reason the paper runs a whole suite, not a single test.
    percents = [p for _, p in curve]
    assert percents == sorted(percents)
    assert percents[0] < 100.0


def test_e4_single_directed_test_is_not_enough(benchmark):
    """The past flow's directed traffic cannot reach full coverage —
    quantifying why 'the test bench was not strong enough'."""

    def experiment():
        config = NodeConfig(n_initiators=3, n_targets=2, name="weak")
        result = run_test(config,
                          build_test("t01_sanity_write_read", config, 1))
        return result.coverage.percent

    percent = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\n[E4] directed write/read alone covers {percent:.1f}% "
          "of the functional space")
    assert percent < 60.0
