"""E2 — Section 5: "The verification environment permitted to find five
bugs on BCA models, not found using old environment of the past flow."

The headline delta of the paper.  For each of the five seeded BCA bugs we
run the past flow (directed single-initiator write-then-read, read-back
check only) and the common environment (twelve seeded test cases with
checkers, scoreboard, arbitration reference).  Expected shape: past flow
0/5, common environment 5/5.
"""

import pytest

from repro.bca import ALL_BUGS, BUG_CATALOG
from repro.catg import run_test
from repro.oldflow import run_past_flow
from repro.regression.testcases import TESTCASES, build_test
from repro.stbus import ArbitrationPolicy, NodeConfig


def hunt_configs():
    return [
        NodeConfig(n_initiators=6, n_targets=2,
                   arbitration=ArbitrationPolicy.LRU,
                   has_programming_port=True, name="hunt-lru"),
        NodeConfig(n_initiators=6, n_targets=2,
                   arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                   has_programming_port=True, name="hunt-prog"),
    ]


def detection_experiment():
    rows = []
    for bug in ALL_BUGS:
        old = run_past_flow(hunt_configs()[0], view="bca", bugs={bug})
        found_by_new = False
        first_test = None
        rules = []
        for config in hunt_configs():
            for name in TESTCASES:
                result = run_test(config, build_test(name, config, 1),
                                  view="bca", bugs={bug})
                if not result.passed:
                    found_by_new = True
                    first_test = name
                    rules = sorted(result.report.rules_hit())
                    break
            if found_by_new:
                break
        rows.append({
            "bug": bug,
            "old_flow_found": not old.passed,
            "new_flow_found": found_by_new,
            "first_test": first_test,
            "rules": rules,
        })
    return rows


def test_e2_five_bugs_old_vs_new_flow(benchmark):
    rows = benchmark.pedantic(detection_experiment, rounds=1, iterations=1)
    print()
    print(f"{'bug':<30} {'past flow':<10} {'common env':<10} detected by")
    for row in rows:
        print(f"{row['bug']:<30} "
              f"{'FOUND' if row['old_flow_found'] else 'missed':<10} "
              f"{'FOUND' if row['new_flow_found'] else 'missed':<10} "
              f"{row['first_test'] or '-'}: {', '.join(row['rules'][:3])}")
    old_total = sum(r["old_flow_found"] for r in rows)
    new_total = sum(r["new_flow_found"] for r in rows)
    print(f"[E2] paper: old flow 0/5, common environment 5/5")
    print(f"[E2] ours:  old flow {old_total}/5, "
          f"common environment {new_total}/5")
    benchmark.extra_info["old_flow_found"] = old_total
    benchmark.extra_info["new_flow_found"] = new_total
    assert old_total == 0
    assert new_total == 5
    # Each bug is caught by the mechanism its catalog entry names.
    by_bug = {r["bug"]: r for r in rows}
    assert "ARB_POLICY" in by_bug["lru-recency-stuck"]["rules"]
    assert any(r.startswith("SB_") or r == "PKT_BE"
               for r in by_bug["subword-lane-misplacement"]["rules"])
    assert "CHUNK_ATOMIC" in by_bug["chunk-lock-ignored"]["rules"] \
        or "ARB_POLICY" in by_bug["chunk-lock-ignored"]["rules"]
    assert "ARB_POLICY" in by_bug["prog-update-stale"]["rules"]


def test_e2_clean_bca_passes_both_flows(benchmark):
    """Control: without seeded bugs both flows report green."""

    def control():
        config = hunt_configs()[0]
        old = run_past_flow(config, view="bca")
        new = run_test(config, build_test("t02_random_uniform", config, 1),
                       view="bca")
        return old.passed and new.passed

    assert benchmark.pedantic(control, rounds=1, iterations=1)
