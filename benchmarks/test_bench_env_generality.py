"""E6 — Figures 2 and 6: one generic testbench architecture for any DUT.

"The architecture of the test bench is standard ... All the gray
components are written in 'e' code and the DUT can be RTL or BCA."
Figure 6 instantiates it around a node with three initiators and two
targets (plus a programming initiator).

Regenerated: the same :class:`~repro.catg.env.VerificationEnv` code
builds and passes around every DUT shape — the Figure 6 node, wide nodes,
both architectures, either design view — without any per-DUT testbench
code.  The run matrix below is the "table" this figure implies.
"""

import pytest

from repro.catg import VerificationEnv, run_test
from repro.regression.testcases import build_test
from repro.stbus import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    ProtocolType,
)

SHAPES = [
    # The exact Figure 6 testbench: 3 initiators, 2 targets, programming
    # initiator driving the arbitration registers.
    NodeConfig(n_initiators=3, n_targets=2,
               arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
               has_programming_port=True, name="figure6"),
    NodeConfig(n_initiators=1, n_targets=1, name="minimal"),
    NodeConfig(n_initiators=8, n_targets=4,
               arbitration=ArbitrationPolicy.ROUND_ROBIN, name="wide8x4"),
    NodeConfig(n_initiators=2, n_targets=2, data_width_bits=128,
               name="w128"),
    NodeConfig(n_initiators=2, n_targets=2,
               architecture=Architecture.SHARED_BUS, name="shared"),
    NodeConfig(n_initiators=3, n_targets=3,
               architecture=Architecture.PARTIAL_CROSSBAR,
               connectivity=frozenset(
                   {(i, t) for i in range(3) for t in range(3)} - {(2, 0)}
               ),
               protocol_type=ProtocolType.T3, name="partial3x3"),
]


def generality_experiment():
    rows = []
    for config in SHAPES:
        for view in ("rtl", "bca"):
            test = build_test("t02_random_uniform", config, 9)
            result = run_test(config, test, view=view)
            rows.append((config.name, view, result.passed,
                         result.cycles, len(result.report.violations)))
    return rows


def test_e6_one_env_fits_every_dut_shape(benchmark):
    rows = benchmark.pedantic(generality_experiment, rounds=1, iterations=1)
    print()
    print(f"[E6] {'configuration':<14} {'view':<5} {'result':<7} cycles")
    for name, view, passed, cycles, violations in rows:
        print(f"     {name:<14} {view:<5} "
              f"{'PASS' if passed else 'FAIL':<7} {cycles}")
        assert passed, (name, view, violations)
    print(f"[E6] {len(SHAPES)} DUT shapes x 2 views, zero per-DUT "
          "testbench code — the Figure 2 architecture is generic")


def test_e6_env_component_count_scales_with_ports(benchmark):
    """The env instantiates one eVC stack (monitor+checker) per port,
    automatically, whatever the configuration says."""

    def build_envs():
        small = VerificationEnv(SHAPES[1])
        big = VerificationEnv(SHAPES[2])
        return small, big

    small, big = benchmark.pedantic(build_envs, rounds=1, iterations=1)
    assert len(small.monitors) == 2 and len(small.checkers) == 2
    assert len(big.monitors) == 12 and len(big.checkers) == 12
    assert small.prog_master is None
    fig6 = VerificationEnv(SHAPES[0])
    assert fig6.prog_master is not None  # Figure 6's programming initiator


def test_e6_catg_covers_converter_duts(benchmark):
    """CATG is "aimed to test component[s] having STBus interfaces" — the
    same architecture (BFM/monitors/checkers/scoreboard/coverage) also
    wraps the converter DUTs, in both views."""
    import random

    from repro.catg import ConverterEnv, bridge_random_program

    def experiment():
        rows = []
        cases = [
            ("size", dict(up_width=32, down_width=8)),
            ("size", dict(up_width=8, down_width=64)),
            ("type", dict(up_protocol=ProtocolType.T2)),
            ("type", dict(up_protocol=ProtocolType.T3)),
        ]
        for kind, kwargs in cases:
            for view in ("rtl", "bca"):
                env = ConverterEnv(kind, view=view, **kwargs)
                program = bridge_random_program(
                    random.Random(11), 15, env.up_port.bus_bytes
                )
                result = env.run(program)
                rows.append((kind, kwargs, view, result.passed,
                             result.coverage.percent))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for kind, kwargs, view, passed, coverage in rows:
        label = f"{kind}({', '.join(f'{k}={v}' for k, v in kwargs.items())})"
        print(f"[E6] {label:<42} {view:<4} "
              f"{'PASS' if passed else 'FAIL'} cov={coverage:.0f}%")
        assert passed
    print("[E6] the generic architecture also verifies the converter "
          "components — no per-DUT testbench rewrite")
