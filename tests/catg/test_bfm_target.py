"""Unit tests for the harness components: BFM, target, programming master."""

import pytest

from repro.catg import (
    InitiatorBfm,
    ProgOp,
    ProgrammingMaster,
    TargetHarness,
    default_byte,
)
from repro.kernel import Module, Simulator
from repro.stbus import (
    Opcode,
    ProtocolType,
    StbusPort,
    T1_READ,
    T1_WRITE,
    Transaction,
    Type1Port,
)


class LoopRig:
    """BFM wired straight to a target harness (no node in between)."""

    def __init__(self, protocol=ProtocolType.T2, width=32, **target_kwargs):
        self.sim = Simulator()
        self.top = Module(self.sim, "rig")
        self.port = StbusPort(self.top, "p", width)
        self.bfm = InitiatorBfm(self.sim, "bfm", self.port, protocol,
                                parent=self.top)
        self.target = TargetHarness(self.sim, "mem", self.port, protocol,
                                    parent=self.top, **target_kwargs)

    def run(self, txns_with_gaps, max_cycles=2000):
        self.bfm.load_program(txns_with_gaps)
        self.sim.elaborate()
        n = len(txns_with_gaps)
        self.sim.run_until(
            lambda: self.bfm.done and len(self.bfm.response_packets) >= n,
            max_cycles,
        )
        return self.sim.now


def test_bfm_gap_delays_injection():
    durations = {}
    for gap in (0, 6):
        rig = LoopRig(latency=1)
        durations[gap] = rig.run([
            (Transaction(Opcode.store(4), 0x0, data=b"\x01\x02\x03\x04"), gap),
            (Transaction(Opcode.load(4), 0x0), gap),
        ])
    assert durations[6] >= durations[0] + 10  # two gaps of 6 cycles


def test_bfm_assigns_rolling_tids():
    rig = LoopRig(latency=1)
    rig.run([(Transaction(Opcode.load(4), 0x10 * k), 0) for k in range(5)])
    assert [t.tid for t in rig.bfm.sent] == [0, 1, 2, 3, 4]


def test_bfm_done_property():
    rig = LoopRig(latency=1)
    assert rig.bfm.done  # empty program
    rig.run([(Transaction(Opcode.load(4), 0x0), 0)])
    assert rig.bfm.done


def test_target_latency_controls_response_time():
    times = {}
    for latency in (1, 20):
        rig = LoopRig(latency=latency)
        times[latency] = rig.run([(Transaction(Opcode.load(4), 0x0), 0)])
    assert times[20] >= times[1] + 15


def test_target_jitter_is_deterministic_per_seed():
    def run_with(seed):
        rig = LoopRig(latency=1, jitter=8, seed=seed)
        cycles = rig.run([
            (Transaction(Opcode.load(4), 0x10 * k), 0) for k in range(6)
        ])
        return cycles

    assert run_with(7) == run_with(7)
    # A different seed draws different jitter (overwhelmingly likely).
    assert run_with(7) != run_with(8) or run_with(9) != run_with(7)


def test_target_capacity_backpressures_gnt():
    # Capacity 1 and long latency: the second packet must wait for the
    # first response, visible as a much longer run.
    times = {}
    for capacity in (1, 8):
        rig = LoopRig(latency=15, capacity=capacity)
        times[capacity] = rig.run([
            (Transaction(Opcode.load(4), 0x10 * k), 0) for k in range(3)
        ])
    assert times[1] > times[8] + 20


def test_target_memory_semantics_direct():
    rig = LoopRig()
    rig.target.write_mem(0x100, b"\xAA\xBB")
    assert rig.target.read_mem(0x100, 2) == b"\xAA\xBB"
    assert rig.target.read_mem(0x200, 1) == bytes([default_byte(0x200)])


def test_target_invalid_opcode_gets_error_response():
    # A raw driver (no BFM) injects a malformed request cell.
    sim = Simulator()
    top = Module(sim, "rig")
    port = StbusPort(top, "p", 32)
    TargetHarness(sim, "mem", port, ProtocolType.T2, latency=1, parent=top)
    state = {"sent": False, "error_seen": False}

    def driver():
        if port.request_fired:
            state["sent"] = True
        if port.response_fired and port.r_opc.value & 1:
            state["error_seen"] = True
        if not state["sent"]:
            port.req.drive(1)
            port.opc.drive(0xFF)  # undecodable
            port.add.drive(0)
            port.be.drive(0xF)
            port.eop.drive(1)
        else:
            port.req.drive(0)
            port.eop.drive(0)
        port.r_gnt.drive(1)

    sim.add_clocked(driver)
    sim.elaborate()
    sim.run_until(lambda: state["error_seen"], 50)


def test_target_validation():
    sim = Simulator()
    top = Module(sim, "t")
    port = StbusPort(top, "p", 32)
    with pytest.raises(ValueError):
        TargetHarness(sim, "m", port, ProtocolType.T2, latency=-1)
    with pytest.raises(ValueError):
        TargetHarness(sim, "m2", port, ProtocolType.T2, capacity=0)


class ProgRig:
    def __init__(self):
        self.sim = Simulator()
        self.top = Module(self.sim, "rig")
        self.port = Type1Port(self.top, "prog")
        self.master = ProgrammingMaster(self.sim, "pm", self.port,
                                        parent=self.top)
        self.writes = []
        self.regs = {}

        def slave():
            port = self.port
            if port.req.value and port.ack.value:
                idx = port.add.value >> 2
                if port.opc.value == T1_WRITE:
                    self.regs[idx] = port.wdata.value
                    self.writes.append((self.sim.now - 1, idx,
                                        port.wdata.value))
            port.ack.drive(port.req.value)
            port.rdata.drive(self.regs.get(port.add.value >> 2, 0))

        self.sim.add_clocked(slave)


def test_prog_master_executes_schedule_in_order():
    rig = ProgRig()
    rig.master.load_schedule([
        ProgOp(cycle=5, index=1, value=42),
        ProgOp(cycle=2, index=0, value=7),
        ProgOp(cycle=20, index=2, value=9),
    ])
    rig.sim.elaborate()
    rig.sim.run_until(lambda: rig.master.done, 100)
    assert [(i, v) for _, i, v in rig.writes] == [(0, 7), (1, 42), (2, 9)]
    # Ops wait for their scheduled cycle.
    assert rig.writes[0][0] >= 2
    assert rig.writes[2][0] >= 20
    assert len(rig.master.completed) == 3


def test_prog_master_read_captures_value():
    rig = ProgRig()
    rig.master.load_schedule([
        ProgOp(cycle=1, index=3, value=0x55, is_write=True),
        ProgOp(cycle=5, index=3, value=0, is_write=False),
    ])
    rig.sim.elaborate()
    rig.sim.run_until(lambda: rig.master.done, 100)
    assert rig.master.read_values == [0x55]


def test_prog_master_idle_with_empty_schedule():
    rig = ProgRig()
    rig.sim.elaborate()
    rig.sim.run(10)
    assert rig.master.done
    assert not rig.writes
