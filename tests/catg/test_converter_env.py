"""Converter verification environment tests."""

import random

import pytest

from repro.catg.converter_env import (
    ConverterEnv,
    bridge_random_program,
    build_bridge_coverage,
)
from repro.stbus import ProtocolType


@pytest.mark.parametrize("view", ["rtl", "bca"])
@pytest.mark.parametrize("kind,kwargs", [
    ("size", dict(up_width=32, down_width=8)),
    ("size", dict(up_width=8, down_width=64)),
    ("type", dict(up_protocol=ProtocolType.T2)),
    ("type", dict(up_protocol=ProtocolType.T3)),
], ids=["down32to8", "up8to64", "t2t3", "t3t2"])
def test_converter_env_green_on_clean_duts(view, kind, kwargs):
    env = ConverterEnv(kind, view=view, **kwargs)
    rng = random.Random(7)
    program = bridge_random_program(rng, 20, env.up_port.bus_bytes)
    result = env.run(program)
    assert result.passed, result.report.violations[:4]
    assert env.scoreboard.matched_requests == 20
    assert env.scoreboard.matched_responses == 20
    assert result.coverage.percent > 50.0
    assert "PASS" in result.summary()


def test_converter_env_coverage_accumulates():
    merged = None
    for seed in range(10):
        # One run uses an error-injecting target so the response:error
        # bin is reachable (the converter itself never errs on clean
        # traffic).
        env = ConverterEnv("size", up_width=32, down_width=8,
                           target_error_rate=0.3 if seed == 0 else 0.0)
        program = bridge_random_program(random.Random(seed), 40, 4)
        result = env.run(program)
        assert result.passed, result.report.violations[:4]
        if merged is None:
            merged = result.coverage
        else:
            merged.merge(result.coverage)
    assert merged.percent == 100.0, merged.holes()


def test_target_error_injection_is_deterministic_and_flagged():
    env = ConverterEnv("size", up_width=32, down_width=8,
                       target_error_rate=1.0)
    result = env.run(bridge_random_program(random.Random(1), 5, 4))
    # Everything errors, but the transformation is still correct, so the
    # environment stays green and the error bin is full.
    assert result.passed, result.report.violations[:4]
    assert result.coverage["response"].bins["error"] == 5
    assert result.coverage["response"].bins["ok"] == 0


def test_converter_env_catches_broken_bridge():
    """A hand-broken bridge (drops the lck flag when repacking) must be
    flagged by the transformation scoreboard."""
    from repro.rtl.converter import RtlSizeConverter

    class LckDroppingConverter(RtlSizeConverter):
        def _absorb_upstream_request(self):
            super()._absorb_upstream_request()
            if self._req_queue:
                for cell in self._req_queue[-1]:
                    cell.lck = 0

    env = ConverterEnv("size", up_width=32, down_width=8,
                       dut_cls=LckDroppingConverter)
    rng = random.Random(3)
    program = bridge_random_program(rng, 10, 4)
    # Force at least one chunked packet (pairs stay on the one link).
    program[2][0].lck = 1
    result = env.run(program)
    assert not result.passed
    assert any(v.rule == "SBC_REQ_TRANSFORM"
               for v in result.report.violations)


def test_converter_env_catches_tid_scramble():
    """A bridge that remaps tids non-sequentially breaks the prediction."""
    from repro.rtl.converter import RtlSizeConverter

    class TidScrambler(RtlSizeConverter):
        def _absorb_upstream_request(self):
            super()._absorb_upstream_request()
            if self._req_queue:
                for cell in self._req_queue[-1]:
                    cell.tid = (cell.tid + 7) & 0xFF

    env = ConverterEnv("size", up_width=32, down_width=8,
                       dut_cls=TidScrambler)
    result = env.run(bridge_random_program(random.Random(5), 6, 4))
    assert not result.passed


def test_converter_env_parameter_validation():
    with pytest.raises(ValueError):
        ConverterEnv("router")
    with pytest.raises(ValueError):
        ConverterEnv("size", view="gate")


def test_bridge_coverage_space_shape():
    with_lanes = build_bridge_coverage(4, 1)
    byte_bus = build_bridge_coverage(1, 4)
    assert "be" in with_lanes.groups
    assert "be" not in byte_bus.groups
    assert "opcode" in with_lanes.groups
