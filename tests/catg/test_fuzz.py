"""Constrained-random fuzzing across configurations and seeds.

The strongest statement the reproduction can make: for *arbitrary*
configurations and seeds, (a) the golden RTL never violates any rule,
(b) the clean BCA never violates any rule, (c) functional coverage is
identical across views, and (d) the two views stay pin-aligned — i.e. the
methodology's invariants hold over the whole configuration space, not
just the shipped test matrix.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catg import run_test
from repro.regression.testcases import TESTCASES, build_test
from repro.stbus import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    ProtocolType,
)


@st.composite
def node_configs(draw):
    protocol = draw(st.sampled_from([ProtocolType.T2, ProtocolType.T3]))
    n_init = draw(st.integers(min_value=1, max_value=4))
    n_targ = draw(st.integers(min_value=1, max_value=3))
    width = draw(st.sampled_from([8, 32, 64]))
    policy = draw(st.sampled_from(list(ArbitrationPolicy)))
    arch = draw(st.sampled_from(
        [Architecture.FULL_CROSSBAR, Architecture.SHARED_BUS]))
    pipe = draw(st.integers(min_value=1, max_value=3))
    outstanding = draw(st.integers(min_value=1, max_value=4))
    return NodeConfig(
        protocol_type=protocol, n_initiators=n_init, n_targets=n_targ,
        data_width_bits=width, arbitration=policy, architecture=arch,
        pipe_depth=pipe, max_outstanding=outstanding, name="fuzz",
    )


FUZZ_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@FUZZ_SETTINGS
@given(node_configs(), st.integers(min_value=0, max_value=10_000),
       st.sampled_from(sorted(TESTCASES)))
def test_fuzz_rtl_never_violates(config, seed, test_name):
    result = run_test(config, build_test(test_name, config, seed))
    assert result.passed, (config.to_text(), test_name, seed,
                           [str(v) for v in result.report.violations[:3]])


@FUZZ_SETTINGS
@given(node_configs(), st.integers(min_value=0, max_value=10_000),
       st.sampled_from(["t02_random_uniform", "t03_out_of_order",
                        "t09_mixed_sizes", "t12_decode_errors"]))
def test_fuzz_views_agree(config, seed, test_name):
    rtl = run_test(config, build_test(test_name, config, seed))
    bca = run_test(config, build_test(test_name, config, seed), view="bca")
    assert rtl.passed and bca.passed
    assert rtl.coverage.hit_signature() == bca.coverage.hit_signature()
    assert rtl.cycles == bca.cycles
    assert rtl.dut_stats["req_cells"] == bca.dut_stats["req_cells"]
    assert rtl.dut_stats["error_packets"] == bca.dut_stats["error_packets"]


@FUZZ_SETTINGS
@given(node_configs(), st.integers(min_value=0, max_value=10_000))
def test_fuzz_fast_mode_matches(config, seed):
    """The standalone BCA mode stays cycle-exact over the fuzzed space."""
    from repro.bca.fast import run_fast
    from repro.catg import VerificationEnv

    test = build_test("t02_random_uniform", config, seed)
    env = VerificationEnv(config, view="bca", with_arbitration_checker=False)
    env.load_test(test)
    pin = env.run()
    assert pin.passed
    pin_resp = sorted(
        (m.index, o.r_tid, o.end_cycle)
        for m in env.monitors if m.role == "initiator"
        for o in m.responses
    )
    fast = run_fast(config, build_test("t02_random_uniform", config, seed))
    fast_resp = sorted(
        (t.initiator, t.tid, t.response_end) for t in fast.completed
    )
    assert fast_resp == pin_resp
