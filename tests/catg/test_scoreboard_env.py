"""Scoreboard, environment and coverage integration tests."""

import pytest

from repro.bca import ALL_BUGS
from repro.catg import (
    VerificationEnv,
    build_node_coverage,
    run_test,
)
from repro.regression.testcases import TESTCASES, build_test
from repro.stbus import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    ProtocolType,
)


def cfg_small(**kwargs):
    defaults = dict(n_initiators=2, n_targets=2, name="small")
    defaults.update(kwargs)
    return NodeConfig(**defaults)


def test_env_rejects_bad_view():
    with pytest.raises(ValueError):
        VerificationEnv(cfg_small(), view="tlm")
    with pytest.raises(ValueError):
        VerificationEnv(cfg_small(), view="rtl", bugs={"src-tag-truncation"})


def test_env_run_without_test_rejected():
    env = VerificationEnv(cfg_small())
    with pytest.raises(RuntimeError):
        env.run()


def test_load_test_validations():
    env = VerificationEnv(cfg_small())
    test = build_test("t01_sanity_write_read", cfg_small(), 1)
    test.programs = test.programs[:1]
    with pytest.raises(ValueError):
        env.load_test(test)


def test_rtl_clean_run_passes_everything():
    cfg = cfg_small(arbitration=ArbitrationPolicy.ROUND_ROBIN)
    result = run_test(cfg, build_test("t02_random_uniform", cfg, 3))
    assert result.passed
    assert result.report.passed
    assert not result.timed_out
    assert result.dut_stats["req_cells"] > 0
    assert result.cycles > 0


@pytest.mark.parametrize("test_name", sorted(TESTCASES))
def test_every_testcase_green_on_rtl(test_name):
    cfg = cfg_small(protocol_type=ProtocolType.T3,
                    arbitration=ArbitrationPolicy.LRU,
                    has_programming_port=True)
    result = run_test(cfg, build_test(test_name, cfg, 7))
    assert result.passed, result.report.violations[:4]


@pytest.mark.parametrize("test_name", sorted(TESTCASES))
def test_every_testcase_green_on_bca(test_name):
    cfg = cfg_small(protocol_type=ProtocolType.T3,
                    arbitration=ArbitrationPolicy.LRU,
                    has_programming_port=True)
    result = run_test(cfg, build_test(test_name, cfg, 7), view="bca")
    assert result.passed, result.report.violations[:4]


def test_coverage_equal_across_views():
    cfg = cfg_small(protocol_type=ProtocolType.T3)
    test_rtl = build_test("t02_random_uniform", cfg, 11)
    test_bca = build_test("t02_random_uniform", cfg, 11)
    rtl = run_test(cfg, test_rtl, view="rtl")
    bca = run_test(cfg, test_bca, view="bca")
    assert rtl.coverage.hit_signature() == bca.coverage.hit_signature()
    assert rtl.coverage.percent == bca.coverage.percent


def test_full_suite_reaches_100_percent_coverage():
    cfg = cfg_small(protocol_type=ProtocolType.T3,
                    arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                    has_programming_port=True)
    merged = build_node_coverage(cfg)
    for name in TESTCASES:
        for seed in (1, 2):
            result = run_test(cfg, build_test(name, cfg, seed))
            assert result.passed, (name, seed, result.report.violations[:3])
            merged.merge(result.coverage)
    assert merged.percent == 100.0, merged.holes()


def test_scoreboard_counts_traffic():
    cfg = cfg_small()
    env = VerificationEnv(cfg)
    env.load_test(build_test("t02_random_uniform", cfg, 5))
    result = env.run()
    assert result.passed
    assert env.scoreboard.matched_requests > 0
    assert env.scoreboard.matched_responses > 0


@pytest.mark.parametrize("bug", sorted(ALL_BUGS))
def test_common_env_catches_every_seeded_bug(bug):
    """The paper's headline: the common environment finds every BCA bug."""
    cfgs = [
        cfg_small(n_initiators=6, arbitration=ArbitrationPolicy.LRU,
                  has_programming_port=True, name="hunt-lru"),
        cfg_small(n_initiators=6,
                  arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                  has_programming_port=True, name="hunt-prog"),
    ]
    detected = False
    for cfg in cfgs:
        for name in TESTCASES:
            result = run_test(cfg, build_test(name, cfg, 1), view="bca",
                              bugs={bug})
            if not result.passed:
                detected = True
                break
        if detected:
            break
    assert detected, f"bug {bug} escaped the common environment"


def test_shared_bus_env_green_both_views():
    cfg = cfg_small(architecture=Architecture.SHARED_BUS)
    for view in ("rtl", "bca"):
        result = run_test(cfg, build_test("t02_random_uniform", cfg, 9),
                          view=view)
        assert result.passed, (view, result.report.violations[:4])


def test_decode_error_test_covers_error_bins():
    cfg = cfg_small()
    result = run_test(cfg, build_test("t12_decode_errors", cfg, 1))
    assert result.passed
    assert result.coverage["decode"].bins["error"] > 0
    assert result.coverage["response"].bins["error"] > 0
