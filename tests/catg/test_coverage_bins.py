"""Bin-accounting edge cases for the functional coverage model."""

import pytest

from repro.catg.coverage import CoverGroup, CoverageModel, build_node_coverage
from repro.stbus import NodeConfig


# ---------------------------------------------------------------------------
# zero-sample groups
# ---------------------------------------------------------------------------

def test_zero_sample_group_reports_all_holes():
    group = CoverGroup("g", ["a", "b", "c"])
    assert group.n_covered == 0
    assert group.percent == 0.0
    assert group.holes() == ["a", "b", "c"]
    assert group.hit_map() == {"a": False, "b": False, "c": False}


def test_zero_sample_model_percent_and_signature():
    model = CoverageModel([CoverGroup("g", ["a"]), CoverGroup("h", ["x", "y"])])
    assert model.n_bins == 3
    assert model.n_covered == 0
    assert model.percent == 0.0
    assert model.holes() == ["g:a", "h:x", "h:y"]
    # The signature is stable and all-False before any sample.
    assert model.hit_signature() == (
        ("g", (("a", False),)),
        ("h", (("x", False), ("y", False))),
    )


def test_empty_bin_list_is_rejected():
    with pytest.raises(ValueError):
        CoverGroup("empty", [])


def test_sample_outside_the_space_is_ignored_not_counted():
    group = CoverGroup("g", ["a"])
    group.sample("zzz")
    assert group.n_covered == 0
    assert group.bins == {"a": 0}


# ---------------------------------------------------------------------------
# duplicate bin names
# ---------------------------------------------------------------------------

def test_duplicate_bin_names_collapse_to_one_bin():
    group = CoverGroup("g", ["a", "a", "b"])
    assert group.n_bins == 2
    group.sample("a")
    group.sample("a")
    # One logical bin: two samples, one covered bin, no double counting.
    assert group.bins["a"] == 2
    assert group.n_covered == 1
    assert group.percent == 50.0


def test_numeric_and_string_bin_names_collapse():
    # Bins are keyed by str(); 1 and "1" are the same bin.
    group = CoverGroup("g", [1, "1", "2"])
    assert group.n_bins == 2
    group.sample(1)
    assert group.bins["1"] == 1
    group.sample("1")
    assert group.bins["1"] == 2


# ---------------------------------------------------------------------------
# cross-bin totals
# ---------------------------------------------------------------------------

def test_model_totals_are_the_sum_of_group_totals():
    config = NodeConfig()
    model = build_node_coverage(config)
    assert model.n_bins == sum(g.n_bins for g in model.groups.values())
    assert model.n_covered == sum(g.n_covered for g in model.groups.values())
    model["decode"].sample("hit")
    model["be"].sample("full")
    assert model.n_covered == 2
    assert 0.0 < model.percent < 100.0
    assert len(model.holes()) == model.n_bins - 2


def test_merge_accumulates_counts_and_adopts_unknown_bins():
    base = CoverageModel([CoverGroup("g", ["a", "b"])])
    base["g"].sample("a")
    other = CoverageModel([
        CoverGroup("g", ["a", "b", "extra"]),
        CoverGroup("new", ["x"]),
    ])
    other["g"].sample("a")
    other["g"].sample("extra")
    other["new"].sample("x")
    base.merge(other)
    # Counts add; bins and groups unknown to the base are adopted.
    assert base["g"].bins == {"a": 2, "b": 0, "extra": 1}
    assert base["new"].bins == {"x": 1}
    assert base.n_bins == 4
    assert base.n_covered == 3


def test_merge_is_identity_on_fresh_models():
    config = NodeConfig()
    base = build_node_coverage(config)
    base.merge(build_node_coverage(config))
    assert base.n_covered == 0
    assert base.n_bins == build_node_coverage(config).n_bins
