"""Targeted tests for the arbitration reference checker."""

import pytest

from repro.catg import ArbitrationChecker, InitiatorBfm, TargetHarness, VerificationReport
from repro.kernel import Module, Simulator
from repro.stbus import (
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    StbusPort,
    Transaction,
)


class FakeDutRig:
    """A degenerate 1x1 'node' whose grant behaviour the test scripts."""

    def __init__(self, grant_mode):
        self.cfg = NodeConfig(n_initiators=1, n_targets=1)
        self.sim = Simulator()
        self.top = Module(self.sim, "rig")
        self.init_port = StbusPort(self.top, "init0", 32)
        self.targ_port = StbusPort(self.top, "targ0", 32)
        self.report = VerificationReport()
        self.bfm = InitiatorBfm(self.sim, "bfm", self.init_port,
                                self.cfg.protocol_type, parent=self.top)
        self.bfm.load_program(
            [(Transaction(Opcode.load(4), 0x10), 0)]
        )
        ArbitrationChecker(self.sim, "arb", self.cfg, [self.init_port],
                           [self.targ_port], self.report, parent=self.top)

        def fake_dut():
            if grant_mode == "never":
                self.init_port.gnt.drive(0)
            elif grant_mode == "always":
                self.init_port.gnt.drive(1)

        self.sim.add_clocked(fake_dut)
        self.sim.elaborate()


def test_checker_flags_missing_grant():
    rig = FakeDutRig("never")
    rig.sim.run(10)
    hits = [v for v in rig.report.violations if v.rule == "ARB_POLICY"]
    assert hits
    assert "missing grant" in hits[0].message


def test_checker_flags_spurious_grant():
    # "always" grants even after the request packet finished.
    rig = FakeDutRig("always")
    rig.sim.run(20)
    hits = [v for v in rig.report.violations if v.rule == "ARB_POLICY"]
    assert any("unexpected grant" in v.message for v in hits)


@pytest.mark.parametrize("policy", list(ArbitrationPolicy),
                         ids=lambda p: p.value)
def test_checker_silent_on_golden_rtl_per_policy(policy):
    """No false positives: the reference must agree with the real RTL
    node under every arbitration policy."""
    from repro.catg import run_test
    from repro.regression.testcases import build_test

    cfg = NodeConfig(
        n_initiators=3, n_targets=2, arbitration=policy,
        has_programming_port=policy in (
            ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
            ArbitrationPolicy.LATENCY_BASED,
        ),
        name=f"golden-{policy.value}",
    )
    for test_name in ("t04_latency_arbitration", "t06_lru_fairness",
                      "t07_priority_reprogramming"):
        result = run_test(cfg, build_test(test_name, cfg, 11))
        assert result.passed, (policy, test_name,
                               result.report.violations[:3])


def test_checker_counts_cycles():
    rig = FakeDutRig("never")
    rig.sim.run(7)
    # one checked cycle per clock
    checker = next(c for c in rig.top.children
                   if isinstance(c, ArbitrationChecker))
    assert checker.checked_cycles == 7
