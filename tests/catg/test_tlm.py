"""TLM verification phase tests (the paper's future-work extension)."""

import pytest

from repro.catg.tlm import (
    TlmChecker,
    build_tlm_coverage,
    run_tlm_verification,
)
from repro.catg.report import VerificationReport
from repro.bca.fast import CompletedTxn, FastResult
from repro.regression.testcases import TESTCASES, build_test
from repro.stbus import (
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    ProtocolType,
)


def cfg(**kwargs):
    defaults = dict(n_initiators=3, n_targets=2, name="tlm")
    defaults.update(kwargs)
    return NodeConfig(**defaults)


@pytest.mark.parametrize("test_name", ["t02_random_uniform",
                                       "t03_out_of_order",
                                       "t09_mixed_sizes",
                                       "t12_decode_errors"])
def test_tlm_phase_green_on_clean_model(test_name):
    config = cfg(protocol_type=ProtocolType.T3,
                 arbitration=ArbitrationPolicy.LRU)
    result = run_tlm_verification(config,
                                  build_test(test_name, config, 5))
    assert result.passed, result.report.violations[:4]
    assert result.fast.completed
    assert "PASS tlm" in result.summary()


def test_tlm_coverage_space_is_transaction_level():
    model = build_tlm_coverage(cfg())
    assert set(model.groups) == {"opcode", "path", "response", "decode"}


def test_tlm_coverage_accumulates_to_full():
    config = cfg(protocol_type=ProtocolType.T3)
    merged = build_tlm_coverage(config)
    for name in TESTCASES:
        if name == "t07_priority_reprogramming":
            continue  # fast mode has no programming port
        for seed in (1, 2, 3):
            result = run_tlm_verification(config,
                                          build_test(name, config, seed))
            assert result.passed
            merged.merge(result.coverage)
    assert merged.percent == 100.0, merged.holes()


def _fake_result(txns, cycles=100, timed_out=False):
    return FastResult(cycles, txns, timed_out)


def _fake_test(n):
    test = build_test("t01_sanity_write_read", cfg(n_initiators=1), 1)
    # Trim/pad bookkeeping: only total_transactions() matters here.
    while test.total_transactions() > n:
        test.programs[0].pop()
    return test


def test_tlm_checker_flags_missing_transactions():
    config = cfg(n_initiators=1)
    report = VerificationReport()
    checker = TlmChecker(config, report)
    test = _fake_test(4)
    checker.check(test, _fake_result([]))
    assert any(v.rule == "TLM_COMPLETE" for v in report.violations)


def test_tlm_checker_flags_wrong_error_flag():
    config = cfg(n_initiators=1)
    report = VerificationReport()
    checker = TlmChecker(config, report)
    # Address 0x0 decodes fine but the response claims an error.
    txn = CompletedTxn(0, 0, Opcode.load(4), 0x0, 0, 0, 10, is_error=True)
    checker.check(_fake_test(1), _fake_result([txn]))
    assert any(v.rule == "TLM_ERROR" for v in report.violations)


def test_tlm_checker_flags_impossible_latency():
    config = cfg(n_initiators=1, pipe_depth=3)
    report = VerificationReport()
    checker = TlmChecker(config, report)
    assert checker.min_latency() == 7
    txn = CompletedTxn(0, 0, Opcode.load(4), 0x0, 0, 0, 3, is_error=False)
    checker.check(_fake_test(1), _fake_result([txn]))
    assert any(v.rule == "TLM_LATENCY" for v in report.violations)


def test_tlm_checker_flags_t2_reordering():
    config = cfg(n_initiators=1, protocol_type=ProtocolType.T2)
    report = VerificationReport()
    checker = TlmChecker(config, report)
    txns = [
        CompletedTxn(0, 0, Opcode.load(4), 0x0, 0, 0, 30, is_error=False),
        CompletedTxn(0, 1, Opcode.load(4), 0x10, 2, 2, 20, is_error=False),
    ]
    checker.check(_fake_test(2), _fake_result(txns))
    assert any(v.rule == "TLM_ORDER" for v in report.violations)


def test_tlm_checker_flags_timeout():
    config = cfg(n_initiators=1)
    report = VerificationReport()
    TlmChecker(config, report).check(_fake_test(0),
                                     _fake_result([], timed_out=True))
    assert any(v.rule == "TLM_TIMEOUT" for v in report.violations)
