"""Monitor packet re-assembly and protocol checker rule tests."""

import pytest

from repro.catg import (
    PortMonitor,
    ProtocolChecker,
    VerificationReport,
)
from repro.kernel import Module, Simulator
from repro.stbus import Opcode, ProtocolType, StbusPort


class PortRig:
    """Directly drives a port's pins to unit-test passive components."""

    def __init__(self, protocol=ProtocolType.T2, width=32, role="initiator"):
        self.sim = Simulator()
        self.top = Module(self.sim, "rig")
        self.port = StbusPort(self.top, "p0", width)
        self.report = VerificationReport()
        self.monitor = PortMonitor(self.sim, "mon", self.port, role, 0,
                                   parent=self.top)
        self.checker = ProtocolChecker(self.sim, "chk", self.port, role, 0,
                                       protocol, self.report, parent=self.top)
        self.sim.elaborate()
        # One idle step so the first driven cycle is observed as cycle 0.
        self.sim.step()

    def cycle(self, **pins):
        """Apply pin values for one cycle (unlisted pins keep value)."""
        for name, value in pins.items():
            getattr(self.port, name).drive(value)
        self.sim._settle()
        self.sim.step()


OPC_ST4 = Opcode.store(4).encode()
OPC_LD8 = Opcode.load(8).encode()


def test_monitor_assembles_request_packet():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_LD8, be=0xF, eop=0, tid=3)
    rig.cycle(req=1, gnt=1, add=0x44, opc=OPC_LD8, be=0xF, eop=1, tid=3)
    rig.cycle(req=0, gnt=0, eop=0)
    assert len(rig.monitor.requests) == 1
    obs = rig.monitor.requests[0]
    assert len(obs.cells) == 2
    assert obs.start_cycle == 0 and obs.end_cycle == 1
    assert obs.tid == 3


def test_monitor_ungranted_cycles_not_collected():
    rig = PortRig()
    rig.cycle(req=1, gnt=0, add=0x40, opc=OPC_ST4, be=0xF, eop=1)
    rig.cycle(req=1, gnt=0, add=0x40, opc=OPC_ST4, be=0xF, eop=1)
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_ST4, be=0xF, eop=1)
    rig.cycle(req=0, eop=0)
    assert len(rig.monitor.requests) == 1
    assert rig.monitor.requests[0].start_cycle == 2
    assert rig.report.passed  # stability held


def test_checker_req_dropped():
    rig = PortRig()
    rig.cycle(req=1, gnt=0, add=0x40, opc=OPC_ST4, be=0xF, eop=1)
    rig.cycle(req=0)
    assert any(v.rule == "REQ_DROPPED" for v in rig.report.violations)


def test_checker_req_unstable():
    rig = PortRig()
    rig.cycle(req=1, gnt=0, add=0x40, opc=OPC_ST4, be=0xF, eop=1)
    rig.cycle(req=1, gnt=0, add=0x48, opc=OPC_ST4, be=0xF, eop=1)
    assert any(v.rule == "REQ_UNSTABLE" for v in rig.report.violations)


def test_checker_invalid_opcode():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x40, opc=0xFF, be=0xF, eop=1)
    assert any(v.rule == "OPC_INVALID" for v in rig.report.violations)


def test_checker_misaligned_address():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x41, opc=OPC_LD8, be=0xF, eop=0)
    assert any(v.rule == "ADDR_ALIGN" for v in rig.report.violations)


def test_checker_wrong_be():
    rig = PortRig()
    # STORE4 at 0x40 on a 32-bit bus needs be=0xF.
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_ST4, be=0x3, eop=1)
    assert any(v.rule == "PKT_BE" for v in rig.report.violations)


def test_checker_eop_too_early():
    rig = PortRig()
    # LOAD8 on 32-bit Type II = 2 request cells; eop on the first is short.
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_LD8, be=0xF, eop=1)
    assert any(v.rule == "PKT_LEN" for v in rig.report.violations)


def test_checker_burst_address_geometry():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_LD8, be=0xF, eop=0)
    rig.cycle(req=1, gnt=1, add=0x48, opc=OPC_LD8, be=0xF, eop=1)  # not 0x44
    assert any(v.rule == "PKT_ADDR" for v in rig.report.violations)


def test_checker_lck_midpacket():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_LD8, be=0xF, eop=0, lck=1)
    assert any(v.rule == "LCK_MIDPACKET" for v in rig.report.violations)


def test_checker_clean_packet_passes():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_LD8, be=0xF, eop=0, tid=1)
    rig.cycle(req=1, gnt=1, add=0x44, opc=OPC_LD8, be=0xF, eop=1, tid=1)
    rig.cycle(req=0, eop=0)
    # Response: 2 cells, tid and src reflected (initiator port 0 -> src 0).
    rig.cycle(r_req=1, r_gnt=1, r_opc=0, r_eop=0, r_tid=1, r_src=0)
    rig.cycle(r_req=1, r_gnt=1, r_opc=0, r_eop=1, r_tid=1, r_src=0)
    rig.cycle(r_req=0, r_eop=0)
    rig.checker.finalize()
    assert rig.report.passed, rig.report.violations


def test_checker_response_length_mismatch():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_LD8, be=0xF, eop=0, tid=1)
    rig.cycle(req=1, gnt=1, add=0x44, opc=OPC_LD8, be=0xF, eop=1, tid=1)
    rig.cycle(req=0, eop=0)
    rig.cycle(r_req=1, r_gnt=1, r_opc=0, r_eop=1, r_tid=1, r_src=0)  # 1 cell
    assert any(v.rule == "RESP_LEN" for v in rig.report.violations)


def test_checker_unexpected_response():
    rig = PortRig()
    rig.cycle(r_req=1, r_gnt=1, r_opc=0, r_eop=1, r_tid=9, r_src=0)
    assert any(v.rule == "RESP_UNEXPECTED" for v in rig.report.violations)


def test_checker_t2_response_order():
    rig = PortRig()
    for tid in (0, 1):
        rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_ST4, be=0xF, eop=1, tid=tid)
    rig.cycle(req=0, eop=0)
    rig.cycle(r_req=1, r_gnt=1, r_opc=0, r_eop=1, r_tid=1, r_src=0)
    assert any(v.rule == "RESP_ORDER" for v in rig.report.violations)


def test_checker_t3_out_of_order_allowed():
    rig = PortRig(protocol=ProtocolType.T3)
    for tid in (0, 1):
        rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_ST4, be=0xF, eop=1, tid=tid)
    rig.cycle(req=0, eop=0)
    rig.cycle(r_req=1, r_gnt=1, r_opc=0, r_eop=1, r_tid=1, r_src=0)
    rig.cycle(r_req=1, r_gnt=1, r_opc=0, r_eop=1, r_tid=0, r_src=0)
    rig.cycle(r_req=0, r_eop=0)
    rig.checker.finalize()
    assert rig.report.passed, rig.report.violations


def test_checker_wrong_r_src_at_initiator():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_ST4, be=0xF, eop=1, tid=0)
    rig.cycle(req=0, eop=0)
    rig.cycle(r_req=1, r_gnt=1, r_opc=0, r_eop=1, r_tid=0, r_src=3)
    assert any(v.rule == "RESP_SRC" for v in rig.report.violations)


def test_checker_chunk_atomicity_at_target():
    rig = PortRig(role="target")
    # src 1 sends a chunked packet (lck=1)...
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_ST4, be=0xF, eop=1, lck=1, src=1)
    # ... but the next packet at this port comes from src 2.
    rig.cycle(req=1, gnt=1, add=0x80, opc=OPC_ST4, be=0xF, eop=1, lck=0, src=2)
    assert any(v.rule == "CHUNK_ATOMIC" for v in rig.report.violations)


def test_checker_finalize_flags_missing_response():
    rig = PortRig()
    rig.cycle(req=1, gnt=1, add=0x40, opc=OPC_ST4, be=0xF, eop=1, tid=5)
    rig.cycle(req=0, eop=0)
    rig.checker.finalize()
    assert any(v.rule == "RESP_MISSING" for v in rig.report.violations)


def test_checker_response_dropped():
    rig = PortRig()
    rig.cycle(r_req=1, r_gnt=0, r_opc=0, r_eop=1, r_tid=0, r_src=0)
    rig.cycle(r_req=0)
    assert any(v.rule == "RESP_DROPPED" for v in rig.report.violations)


def test_monitor_response_assembly_and_error_flag():
    rig = PortRig()
    rig.cycle(r_req=1, r_gnt=1, r_opc=1, r_eop=1, r_tid=0, r_src=0)
    rig.cycle(r_req=0, r_eop=0)
    assert len(rig.monitor.responses) == 1
    assert rig.monitor.responses[0].is_error
