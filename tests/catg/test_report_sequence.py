"""Unit tests for the report sink and the sequence generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catg import VerificationReport, Violation
from repro.catg.sequence import (
    DEFAULT_MIX,
    directed_write_read_pairs,
    pick_kind,
    random_program,
    random_transaction,
)
from repro.stbus import NodeConfig, OpKind, ProtocolType


# ---------------------------------------------------------------- report ---

def test_report_pass_fail_and_histogram():
    report = VerificationReport(name="r")
    assert report.passed
    assert report.first_violation() is None
    report.error("RULE_A", "chk", 5, "boom")
    report.error("RULE_A", "chk", 7, "boom again")
    report.error("RULE_B", "sb", 9, "bang")
    assert not report.passed
    assert report.rules_hit() == {"RULE_A": 2, "RULE_B": 1}
    assert report.first_violation().cycle == 5
    assert "[RULE_A]" in str(report.first_violation())


def test_report_caps_violations():
    report = VerificationReport(max_violations=3)
    for k in range(10):
        report.error("R", "x", k, "m")
    assert len(report.violations) == 3


def test_report_render_contains_status_and_notes():
    report = VerificationReport(name="demo")
    report.note("something to remember")
    text = report.render()
    assert "Status: PASS" in text
    assert "something to remember" in text
    report.error("R", "x", 1, "m")
    assert "Status: FAIL" in report.render()


def test_violation_is_hashable_and_frozen():
    v = Violation("R", "src", 3, "msg")
    assert hash(v)
    with pytest.raises(Exception):
        v.cycle = 4  # frozen dataclass


# -------------------------------------------------------------- sequences ---

def test_pick_kind_respects_mix():
    rng = random.Random(0)
    only_loads = tuple((OpKind.LOAD, 1) for _ in range(1))
    assert all(pick_kind(rng, only_loads) is OpKind.LOAD for _ in range(20))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_transaction_always_legal(seed):
    """Generated transactions are aligned, in-region and data-sized."""
    config = NodeConfig(n_initiators=2, n_targets=3)
    rng = random.Random(seed)
    amap = config.resolved_map
    for _ in range(10):
        txn = random_transaction(config, rng, 0)
        assert txn.address % txn.opcode.size == 0
        assert amap.decode(txn.address) in range(3)
        if txn.opcode.kind.carries_request_data:
            assert len(txn.data) == txn.opcode.size
        else:
            assert txn.data == b""


def test_random_transaction_error_probability_generates_misses():
    config = NodeConfig(n_initiators=1, n_targets=1)
    rng = random.Random(4)
    amap = config.resolved_map
    decodes = [
        amap.decode(random_transaction(config, rng, 0,
                                       error_probability=1.0).address)
        for _ in range(10)
    ]
    assert all(d is None for d in decodes)


def test_random_transaction_respects_target_filter():
    config = NodeConfig(n_initiators=1, n_targets=4)
    rng = random.Random(9)
    amap = config.resolved_map
    for _ in range(20):
        txn = random_transaction(config, rng, 0, targets=[2])
        assert amap.decode(txn.address) == 2


def test_random_program_gap_bounds():
    config = NodeConfig(n_initiators=1, n_targets=1)
    program = random_program(config, random.Random(1), 0, 30,
                             gap_range=(2, 5))
    assert len(program) == 30
    assert all(2 <= gap <= 5 for _, gap in program)


def test_directed_pairs_alternate_store_load():
    config = NodeConfig(n_initiators=1, n_targets=2)
    program = directed_write_read_pairs(config, 0, 1, n_pairs=3)
    assert len(program) == 6
    kinds = [txn.opcode.kind for txn, _ in program]
    assert kinds == [OpKind.STORE, OpKind.LOAD] * 3
    # Pairs hit the same address.
    for k in range(0, 6, 2):
        assert program[k][0].address == program[k + 1][0].address


def test_random_transaction_unreachable_initiator_rejected():
    from repro.stbus import Architecture

    config = NodeConfig(
        n_initiators=2, n_targets=1,
        architecture=Architecture.PARTIAL_CROSSBAR,
        connectivity=frozenset({(0, 0)}),
    )
    with pytest.raises(ValueError):
        random_transaction(config, random.Random(0), 1)
