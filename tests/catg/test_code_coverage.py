"""Code coverage collector tests (the RTL-only metric)."""

import os

from repro.catg import CodeCoverage, run_test
from repro.regression.testcases import build_test
from repro.stbus import NodeConfig


def test_tracer_collects_rtl_lines():
    cfg = NodeConfig(n_initiators=2, n_targets=2)
    with CodeCoverage() as tracer:
        result = run_test(cfg, build_test("t02_random_uniform", cfg, 1))
    assert result.passed
    report = tracer.report()
    assert report.files, "no RTL files traced"
    names = {os.path.basename(p) for p in report.files}
    assert "node.py" in names
    assert "pipeline.py" in names
    assert 0.0 < report.line_percent <= 100.0
    assert 0.0 < report.statement_percent <= 100.0
    assert 0.0 <= report.branch_percent <= 100.0


def test_tracer_scope_excludes_bca():
    cfg = NodeConfig(n_initiators=1, n_targets=1)
    with CodeCoverage() as tracer:
        run_test(cfg, build_test("t01_sanity_write_read", cfg, 1), view="bca")
    report = tracer.report()
    # The BCA view never touches repro/rtl, so nothing is collected —
    # reproducing the paper's "code coverage for the RTL view only".
    assert not report.files


def test_more_tests_cover_more():
    cfg = NodeConfig(n_initiators=2, n_targets=2)
    with CodeCoverage() as small:
        run_test(cfg, build_test("t01_sanity_write_read", cfg, 1))
    with CodeCoverage() as big:
        for name in ("t01_sanity_write_read", "t02_random_uniform",
                     "t08_locked_chunks", "t12_decode_errors"):
            run_test(cfg, build_test(name, cfg, 1))
    node_small = [c for p, c in small.report().files.items()
                  if p.endswith("node.py")]
    node_big = [c for p, c in big.report().files.items()
                if p.endswith("node.py")]
    assert node_big[0].line_percent >= node_small[0].line_percent


def test_report_renders_missed_lines():
    cfg = NodeConfig(n_initiators=1, n_targets=1)
    with CodeCoverage() as tracer:
        run_test(cfg, build_test("t01_sanity_write_read", cfg, 1))
    text = tracer.report().render()
    assert "line" in text and "branch" in text and "statement" in text


def test_custom_predicate():
    cfg = NodeConfig(n_initiators=1, n_targets=1)
    with CodeCoverage(predicate=lambda p: p.endswith("pipeline.py")) as tracer:
        run_test(cfg, build_test("t01_sanity_write_read", cfg, 1))
    report = tracer.report()
    assert set(os.path.basename(p) for p in report.files) == {"pipeline.py"}
