"""Type I (register/programming port) protocol checker tests."""

import pytest

from repro.catg import Type1Checker, VerificationReport
from repro.kernel import Module, Simulator
from repro.stbus import T1_READ, T1_WRITE, Type1Port


class T1Rig:
    def __init__(self):
        self.sim = Simulator()
        self.top = Module(self.sim, "rig")
        self.port = Type1Port(self.top, "p")
        self.report = VerificationReport()
        Type1Checker(self.sim, "chk", self.port, self.report,
                     parent=self.top)
        self.sim.elaborate()
        self.sim.step()  # idle cycle so the first drive is cycle 0

    def cycle(self, **pins):
        for name, value in pins.items():
            getattr(self.port, name).drive(value)
        self.sim._settle()
        self.sim.step()


def test_clean_write_transfer_passes():
    rig = T1Rig()
    rig.cycle(req=1, ack=0, opc=T1_WRITE, add=4, wdata=9, be=0xF)
    rig.cycle(req=1, ack=1)
    rig.cycle(req=0, ack=0)
    assert rig.report.passed, rig.report.violations


def test_ack_without_req_flagged():
    rig = T1Rig()
    rig.cycle(req=0, ack=1)
    assert any(v.rule == "T1_ACK_SPURIOUS" for v in rig.report.violations)


def test_idle_opcode_with_req_flagged():
    rig = T1Rig()
    rig.cycle(req=1, ack=1, opc=0)
    assert any(v.rule == "T1_OPC" for v in rig.report.violations)


def test_undefined_opcode_flagged():
    rig = T1Rig()
    rig.cycle(req=1, ack=1, opc=3)
    assert any(v.rule == "T1_OPC" for v in rig.report.violations)


def test_command_change_while_waiting_flagged():
    rig = T1Rig()
    rig.cycle(req=1, ack=0, opc=T1_WRITE, add=4, wdata=9, be=0xF)
    rig.cycle(req=1, ack=0, opc=T1_WRITE, add=8, wdata=9, be=0xF)
    assert any(v.rule == "T1_UNSTABLE" for v in rig.report.violations)


def test_req_dropped_before_ack_flagged():
    rig = T1Rig()
    rig.cycle(req=1, ack=0, opc=T1_READ, add=0, be=0xF)
    rig.cycle(req=0)
    assert any(v.rule == "T1_DROPPED" for v in rig.report.violations)


def test_env_instantiates_t1_checker_only_with_prog_port():
    from repro.catg import VerificationEnv
    from repro.stbus import ArbitrationPolicy, NodeConfig

    plain = VerificationEnv(NodeConfig())
    assert plain.t1_checker is None
    prog = VerificationEnv(NodeConfig(
        arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
        has_programming_port=True,
    ))
    assert prog.t1_checker is not None
