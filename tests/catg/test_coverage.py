"""Unit tests for the functional coverage model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catg.coverage import (
    CoverGroup,
    CoverageModel,
    build_node_coverage,
)
from repro.stbus import NodeConfig, ProtocolType


def test_covergroup_basic():
    group = CoverGroup("g", ["a", "b", "c"])
    assert group.n_bins == 3
    assert group.percent == 0.0
    group.sample("a")
    group.sample("a")
    assert group.n_covered == 1
    assert group.bins["a"] == 2
    assert set(group.holes()) == {"b", "c"}


def test_covergroup_ignores_out_of_space_samples():
    group = CoverGroup("g", ["a"])
    group.sample("zzz")
    assert group.n_covered == 0


def test_covergroup_empty_rejected():
    with pytest.raises(ValueError):
        CoverGroup("g", [])


def test_model_percent_aggregates():
    model = CoverageModel([CoverGroup("g1", ["a", "b"]),
                           CoverGroup("g2", ["x", "y"])])
    assert model.n_bins == 4
    model["g1"].sample("a")
    assert model.percent == 25.0
    assert "g2:x" in model.holes()


def test_model_merge_accumulates():
    a = CoverageModel([CoverGroup("g", ["x", "y"])])
    b = CoverageModel([CoverGroup("g", ["x", "y"])])
    a["g"].sample("x")
    b["g"].sample("y")
    a.merge(b)
    assert a.percent == 100.0
    assert a["g"].bins["y"] == 1


def test_hit_signature_ignores_counts():
    a = CoverageModel([CoverGroup("g", ["x", "y"])])
    b = CoverageModel([CoverGroup("g", ["x", "y"])])
    a["g"].sample("x")
    b["g"].sample("x")
    b["g"].sample("x")
    assert a.hit_signature() == b.hit_signature()
    b["g"].sample("y")
    assert a.hit_signature() != b.hit_signature()


def test_node_coverage_space_depends_only_on_config():
    cfg = NodeConfig(n_initiators=2, n_targets=3)
    assert build_node_coverage(cfg).n_bins == build_node_coverage(cfg).n_bins
    sig_a = tuple(sorted(build_node_coverage(cfg).groups))
    sig_b = tuple(sorted(build_node_coverage(cfg).groups))
    assert sig_a == sig_b


def test_node_coverage_t3_has_ordering_group():
    t2 = build_node_coverage(NodeConfig(protocol_type=ProtocolType.T2))
    t3 = build_node_coverage(NodeConfig(protocol_type=ProtocolType.T3))
    assert "ordering" not in t2.groups
    assert "ordering" in t3.groups


def test_node_coverage_programming_group_conditional():
    plain = build_node_coverage(NodeConfig())
    prog = build_node_coverage(NodeConfig(has_programming_port=True))
    assert "programming" not in plain.groups
    assert "programming" in prog.groups


def test_node_coverage_paths_respect_partial_crossbar():
    from repro.stbus import Architecture

    cfg = NodeConfig(
        architecture=Architecture.PARTIAL_CROSSBAR,
        n_initiators=2, n_targets=2,
        connectivity=frozenset({(0, 0), (0, 1), (1, 1)}),
    )
    model = build_node_coverage(cfg)
    assert "init1->targ0" not in model["path"].bins
    assert model["path"].n_bins == 3


def test_render_contains_percentages():
    model = build_node_coverage(NodeConfig())
    text = model.render()
    assert "Functional coverage" in text
    assert "opcode" in text


@given(st.sets(st.text(min_size=1, max_size=8), min_size=1, max_size=20),
       st.data())
def test_percent_bounds_property(bins, data):
    group = CoverGroup("g", bins)
    for _ in range(data.draw(st.integers(min_value=0, max_value=30))):
        group.sample(data.draw(st.sampled_from(sorted(bins))))
    assert 0.0 <= group.percent <= 100.0
    assert group.n_covered + len(group.holes()) == group.n_bins
