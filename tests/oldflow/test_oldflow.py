"""Past-flow baseline tests: it works, and it is blind to the BCA bugs."""

import pytest

from repro.bca import ALL_BUGS
from repro.oldflow import run_past_flow
from repro.stbus import ArbitrationPolicy, NodeConfig, ProtocolType


def hunt_config(**kwargs):
    defaults = dict(
        n_initiators=6, n_targets=2, arbitration=ArbitrationPolicy.LRU,
        has_programming_port=True, name="hunt",
    )
    defaults.update(kwargs)
    return NodeConfig(**defaults)


def test_past_flow_passes_clean_models():
    cfg = hunt_config()
    for view in ("rtl", "bca"):
        result = run_past_flow(cfg, view=view)
        assert result.passed, result.mismatches
        assert result.n_pairs > 0
        assert "PASS" in result.summary()


@pytest.mark.parametrize("bug", sorted(ALL_BUGS))
def test_past_flow_misses_every_seeded_bug(bug):
    """Section 5's negative result: the old environment finds none of
    the five BCA bugs."""
    result = run_past_flow(hunt_config(), view="bca", bugs={bug})
    assert result.passed, (
        f"past flow unexpectedly detected {bug}: {result.mismatches}"
    )


def test_past_flow_does_detect_gross_data_corruption():
    """Sanity: the old check is not a no-op — it does catch a bug that
    corrupts full-width data on its single path."""

    from repro.bca.node import BcaNode
    from repro.oldflow.basic_tb import PastFlowTestbench
    from repro.stbus import Cell
    from dataclasses import replace

    class GrossNode(BcaNode):
        def _forward_cell(self, cell, initiator):
            fwd = super()._forward_cell(cell, initiator)
            return replace(fwd, data=fwd.data ^ 0xFF)

    cfg = hunt_config()
    tb = PastFlowTestbench(cfg, view="bca")
    tb.dut.__class__ = GrossNode
    tb.build_program()
    result = tb.run()
    assert not result.passed
    assert result.mismatches


def test_past_flow_t3_also_works():
    cfg = hunt_config(protocol_type=ProtocolType.T3)
    assert run_past_flow(cfg, view="bca").passed
