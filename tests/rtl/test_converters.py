"""Size/type converter and register decoder tests, both views.

Each converter sits between an initiator BFM (upstream) and a target
harness (downstream); the tests check data integrity across geometry
changes, ordering rules, and RTL<->BCA pin alignment.
"""

import pytest

from repro.bca import (
    BcaRegisterDecoder,
    BcaSizeConverter,
    BcaTypeConverter,
)
from repro.catg.bfm import InitiatorBfm
from repro.catg.target import TargetHarness
from repro.kernel import Module, Simulator
from repro.rtl import (
    RtlRegisterDecoder,
    RtlSizeConverter,
    RtlTypeConverter,
)
from repro.stbus import (
    Opcode,
    ProtocolType,
    StbusPort,
    Transaction,
    response_data_from_cells,
)


class BridgeTb:
    """BFM --(up port)-- bridge --(down port)-- memory target."""

    def __init__(self, bridge_kind, view, up_width=32, down_width=8,
                 up_protocol=ProtocolType.T2,
                 down_protocol=ProtocolType.T2):
        self.sim = Simulator()
        self.top = Module(self.sim, "tb")
        if bridge_kind == "type":
            down_width = up_width
        self.up_port = StbusPort(self.top, "up", up_width)
        self.down_port = StbusPort(self.top, "down", down_width)
        if bridge_kind == "size":
            cls = RtlSizeConverter if view == "rtl" else BcaSizeConverter
            self.bridge = cls(self.sim, "dut", self.up_port, self.down_port,
                              up_protocol, parent=self.top)
            down_protocol = up_protocol
        else:
            cls = RtlTypeConverter if view == "rtl" else BcaTypeConverter
            self.bridge = cls(self.sim, "dut", self.up_port, self.down_port,
                              up_protocol, down_protocol, parent=self.top)
        self.bfm = InitiatorBfm(self.sim, "bfm", self.up_port, up_protocol,
                                parent=self.top)
        self.memory = TargetHarness(self.sim, "mem", self.down_port,
                                    down_protocol, latency=2, seed=5,
                                    parent=self.top)

    def run_program(self, txns, max_cycles=3000):
        self.bfm.load_program([(t, 0) for t in txns])
        self.sim.elaborate()
        self.sim.run_until(
            lambda: self.bfm.done
            and len(self.bfm.response_packets) >= len(txns),
            max_cycles,
        )
        self.sim.run(5)
        return self.bfm.response_packets


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_size_converter_downsize_store_load(view):
    tb = BridgeTb("size", view, up_width=32, down_width=8)
    data = bytes([0xDE, 0xAD, 0xBE, 0xEF])
    resp = tb.run_program([
        Transaction(Opcode.store(4), 0x100, data=data),
        Transaction(Opcode.load(4), 0x100),
    ])
    got = response_data_from_cells(resp[1], Opcode.load(4), 4, address=0x100)
    assert got == data
    # Downstream saw the repacked geometry: 4 cells of 1 byte each.
    assert tb.bridge.stats["requests"] == 2
    assert tb.memory.read_mem(0x100, 4) == data


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_size_converter_upsize(view):
    tb = BridgeTb("size", view, up_width=8, down_width=64)
    data = bytes(range(16))
    resp = tb.run_program([
        Transaction(Opcode.store(16), 0x40, data=data),
        Transaction(Opcode.load(16), 0x40),
    ])
    got = response_data_from_cells(resp[1], Opcode.load(16), 1, address=0x40)
    assert got == data


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_type_converter_t2_to_t3(view):
    tb = BridgeTb("type", view, up_width=32, down_width=32,
                  up_protocol=ProtocolType.T2,
                  down_protocol=ProtocolType.T3)
    data = bytes(range(8))
    resp = tb.run_program([
        Transaction(Opcode.store(8), 0x20, data=data),
        Transaction(Opcode.load(8), 0x20),
    ])
    # Upstream is Type II: symmetric packets (store resp 2 cells).
    assert len(resp[0]) == 2
    assert len(resp[1]) == 2
    got = response_data_from_cells(resp[1], Opcode.load(8), 4, address=0x20)
    assert got == data


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_type_converter_t3_to_t2(view):
    tb = BridgeTb("type", view, up_width=32, down_width=32,
                  up_protocol=ProtocolType.T3,
                  down_protocol=ProtocolType.T2)
    data = bytes(range(8))
    resp = tb.run_program([
        Transaction(Opcode.store(8), 0x20, data=data),
        Transaction(Opcode.load(8), 0x20),
    ])
    # Upstream Type III: store ack is a single cell.
    assert len(resp[0]) == 1
    assert len(resp[1]) == 2


def test_converter_parameter_validation():
    sim = Simulator()
    top = Module(sim, "t")
    a = StbusPort(top, "a", 32)
    b = StbusPort(top, "b", 32)
    c = StbusPort(top, "c", 64)
    with pytest.raises(ValueError):
        RtlSizeConverter(sim, "x", a, b, ProtocolType.T2)
    with pytest.raises(ValueError):
        RtlTypeConverter(sim, "y", a, c, ProtocolType.T2, ProtocolType.T3)
    with pytest.raises(ValueError):
        RtlTypeConverter(sim, "z", a, b, ProtocolType.T2, ProtocolType.T2)
    with pytest.raises(ValueError):
        BcaTypeConverter(sim, "w", a, b, ProtocolType.T1, ProtocolType.T2)


@pytest.mark.parametrize("kind,kwargs", [
    ("size", dict(up_width=32, down_width=8)),
    ("size", dict(up_width=16, down_width=64)),
    ("type", dict(up_protocol=ProtocolType.T2,
                  down_protocol=ProtocolType.T3)),
    ("type", dict(up_protocol=ProtocolType.T3,
                  down_protocol=ProtocolType.T2)),
], ids=["down32to8", "up16to64", "t2t3", "t3t2"])
def test_converter_views_pin_aligned(kind, kwargs):
    """RTL and BCA converter views drive identical pins every cycle."""
    txns = lambda: [
        Transaction(Opcode.store(8), 0x00, data=bytes(range(8))),
        Transaction(Opcode.load(8), 0x00),
        Transaction(Opcode.store(2), 0x12, data=b"\xAB\xCD"),
        Transaction(Opcode.load(2), 0x12),
        Transaction(Opcode.rmw(4), 0x20, data=b"\x01\x02\x03\x04"),
    ]
    traces = {}
    for view in ("rtl", "bca"):
        tb = BridgeTb(kind, view, **kwargs)
        tb.bfm.load_program([(t, 1) for t in txns()])
        tb.sim.elaborate()
        rows = []
        signals = tb.up_port.signals() + tb.down_port.signals()
        for _ in range(300):
            tb.sim.step()
            rows.append(tuple(s.value for s in signals))
        traces[view] = rows
    mismatch = [i for i, (a, b) in
                enumerate(zip(traces["rtl"], traces["bca"])) if a != b]
    assert not mismatch, f"first pin mismatch at cycle {mismatch[0]}"


class RegdecTb:
    def __init__(self, view, protocol=ProtocolType.T2, width=32):
        self.sim = Simulator()
        self.top = Module(self.sim, "tb")
        self.port = StbusPort(self.top, "p", width)
        cls = RtlRegisterDecoder if view == "rtl" else BcaRegisterDecoder
        self.dut = cls(self.sim, "regs", self.port, protocol, n_regs=4,
                       parent=self.top)
        self.bfm = InitiatorBfm(self.sim, "bfm", self.port, protocol,
                                parent=self.top)

    def run_program(self, txns, max_cycles=1000):
        self.bfm.load_program([(t, 0) for t in txns])
        self.sim.elaborate()
        self.sim.run_until(
            lambda: self.bfm.done
            and len(self.bfm.response_packets) >= len(txns),
            max_cycles,
        )
        return self.bfm.response_packets


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_register_decoder_write_read(view):
    tb = RegdecTb(view)
    resp = tb.run_program([
        Transaction(Opcode.store(4), 0x4, data=b"\x11\x22\x33\x44"),
        Transaction(Opcode.load(4), 0x4),
    ])
    got = response_data_from_cells(resp[1], Opcode.load(4), 4, address=0x4)
    assert got == b"\x11\x22\x33\x44"
    assert tb.dut.read_register(1) == b"\x11\x22\x33\x44"


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_register_decoder_window_wraps(view):
    tb = RegdecTb(view)
    # 4 regs x 4 bytes = 16-byte window: address 0x10 aliases register 0.
    resp = tb.run_program([
        Transaction(Opcode.store(4), 0x10, data=b"\xAA\xBB\xCC\xDD"),
        Transaction(Opcode.load(4), 0x0),
    ])
    got = response_data_from_cells(resp[1], Opcode.load(4), 4, address=0x0)
    assert got == b"\xAA\xBB\xCC\xDD"


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_register_decoder_oversize_errors(view):
    tb = RegdecTb(view)
    resp = tb.run_program([Transaction(Opcode.load(16), 0x0)])
    assert all(c.is_error for c in resp[0])
    assert tb.dut.errors == 1


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_register_decoder_rmw_semaphore(view):
    tb = RegdecTb(view)
    resp = tb.run_program([
        Transaction(Opcode.store(4), 0x0, data=b"\x00\x00\x00\x00"),
        Transaction(Opcode.rmw(4), 0x0, data=b"\x01\x00\x00\x00"),
        Transaction(Opcode.rmw(4), 0x0, data=b"\x01\x00\x00\x00"),
    ])
    first = response_data_from_cells(resp[1], Opcode.rmw(4), 4)
    second = response_data_from_cells(resp[2], Opcode.rmw(4), 4)
    assert first == b"\x00\x00\x00\x00"  # lock acquired
    assert second == b"\x01\x00\x00\x00"  # already held


def test_register_decoder_views_pin_aligned():
    txns = lambda: [
        Transaction(Opcode.store(4), 0x0, data=b"\x10\x20\x30\x40"),
        Transaction(Opcode.load(4), 0x0),
        Transaction(Opcode.store(1), 0x6, data=b"\x99"),
        Transaction(Opcode.load(1), 0x6),
        Transaction(Opcode.swap(4), 0x0, data=b"\x0A\x0B\x0C\x0D"),
    ]
    traces = {}
    for view in ("rtl", "bca"):
        tb = RegdecTb(view)
        tb.bfm.load_program([(t, 1) for t in txns()])
        tb.sim.elaborate()
        rows = []
        for _ in range(150):
            tb.sim.step()
            rows.append(tuple(s.value for s in tb.port.signals()))
        traces[view] = rows
    assert traces["rtl"] == traces["bca"]
