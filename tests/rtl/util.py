"""Hand-rolled mini testbench used by RTL/BCA node unit tests.

The full CATG environment (monitors, checkers, scoreboard, coverage) lives
in repro.catg.env; these tests drive the node with just BFMs and target
harnesses to pin down the microarchitecture itself.
"""

from typing import List, Optional, Sequence, Tuple

from repro.catg.bfm import InitiatorBfm
from repro.catg.target import TargetHarness
from repro.kernel import Module, Simulator
from repro.stbus import NodeConfig, StbusPort, Transaction, Type1Port


class MiniTb:
    def __init__(
        self,
        config: NodeConfig,
        node_cls,
        target_latencies: Optional[Sequence[int]] = None,
        capacity: int = 8,
    ):
        self.config = config
        self.sim = Simulator()
        self.top = Module(self.sim, "tb")
        width = config.data_width_bits
        self.init_ports = [
            StbusPort(self.top, f"init{i}", width)
            for i in range(config.n_initiators)
        ]
        self.targ_ports = [
            StbusPort(self.top, f"targ{t}", width)
            for t in range(config.n_targets)
        ]
        self.prog_port = (
            Type1Port(self.top, "prog") if config.has_programming_port else None
        )
        self.node = node_cls(
            self.sim, "dut", config, self.init_ports, self.targ_ports,
            prog_port=self.prog_port, parent=self.top,
        )
        self.bfms = [
            InitiatorBfm(
                self.sim, f"bfm{i}", self.init_ports[i], config.protocol_type,
                parent=self.top,
            )
            for i in range(config.n_initiators)
        ]
        latencies = list(target_latencies or [2] * config.n_targets)
        self.targets = [
            TargetHarness(
                self.sim, f"mem{t}", self.targ_ports[t], config.protocol_type,
                latency=latencies[t], capacity=capacity, seed=1000 + t,
                parent=self.top,
            )
            for t in range(config.n_targets)
        ]

    def program(self, initiator: int, txns: List[Tuple[Transaction, int]]):
        self.bfms[initiator].load_program(txns)

    def run_to_completion(self, max_cycles: int = 5000) -> int:
        self.sim.elaborate()

        def finished() -> bool:
            if not all(bfm.done for bfm in self.bfms):
                return False
            if any(
                self.node.outstanding_count(i)
                for i in range(self.config.n_initiators)
            ):
                return False
            return not any(t.busy for t in self.targets)

        cycles = self.sim.run_until(finished, max_cycles)
        self.sim.run(5)  # drain a few more cycles for monitors/asserts
        return cycles
