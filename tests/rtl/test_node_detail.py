"""Microarchitecture-detail tests of the node, run on both views.

These pin down behaviours the smoke tests don't: chunk locking, Type II
target-switch blocking, programming-port readback, bandwidth shaping,
shared-bus serialization.
"""

import pytest

from repro.bca import BcaNode
from repro.rtl import RtlNode
from repro.stbus import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    ProtocolType,
    T1_READ,
    T1_WRITE,
    Transaction,
)

from .util import MiniTb

VIEWS = [("rtl", RtlNode), ("bca", BcaNode)]


@pytest.mark.parametrize("view,node_cls", VIEWS, ids=["rtl", "bca"])
def test_chunk_holds_target_for_owner(view, node_cls):
    """With lck, initiator 0's two packets must reach the target
    back-to-back even while initiator 1 contends."""
    cfg = NodeConfig(n_initiators=2, n_targets=1,
                     arbitration=ArbitrationPolicy.ROUND_ROBIN)
    tb = MiniTb(cfg, node_cls)
    first = Transaction(Opcode.store(8), 0x00, data=b"\x00" * 8, lck=1)
    second = Transaction(Opcode.store(8), 0x20, data=b"\x11" * 8)
    tb.program(0, [(first, 2), (second, 3)])
    tb.program(1, [
        (Transaction(Opcode.store(8), 0x40 + 16 * k, data=b"\x22" * 8), 0)
        for k in range(4)
    ])
    # Observe arrival order at the target port.
    arrivals = []

    def watcher():
        port = tb.targ_ports[0]
        if port.request_fired and port.eop.value:
            arrivals.append(port.src.value)

    tb.sim.add_clocked(watcher)
    tb.run_to_completion()
    first_idx = arrivals.index(0)
    # The packet right after initiator 0's chunked packet is initiator
    # 0's again — no interleave despite initiator 1 requesting.
    assert arrivals[first_idx + 1] == 0, arrivals
    assert 1 in arrivals  # initiator 1 eventually served


@pytest.mark.parametrize("view,node_cls", VIEWS, ids=["rtl", "bca"])
def test_t2_blocks_target_switch_until_drained(view, node_cls):
    """Type II ordering: a new packet toward a different target must wait
    for all outstanding responses."""
    cfg = NodeConfig(n_initiators=1, n_targets=2,
                     protocol_type=ProtocolType.T2, max_outstanding=4)
    tb = MiniTb(cfg, node_cls, target_latencies=[25, 1])
    tb.program(0, [
        (Transaction(Opcode.load(4), 0x0000), 0),  # slow target 0
        (Transaction(Opcode.load(4), 0x1000), 0),  # fast target 1
    ])
    start_of_second = []

    def watcher():
        port = tb.targ_ports[1]
        if port.request_fired:
            start_of_second.append(tb.sim.now - 1)

    tb.sim.add_clocked(watcher)
    tb.run_to_completion()
    # The second request cannot reach target 1 before target 0's response
    # (latency 25) has drained.
    assert start_of_second[0] > 25


@pytest.mark.parametrize("view,node_cls", VIEWS, ids=["rtl", "bca"])
def test_t3_switches_targets_immediately(view, node_cls):
    cfg = NodeConfig(n_initiators=1, n_targets=2,
                     protocol_type=ProtocolType.T3, max_outstanding=4)
    tb = MiniTb(cfg, node_cls, target_latencies=[25, 1])
    tb.program(0, [
        (Transaction(Opcode.load(4), 0x0000), 0),
        (Transaction(Opcode.load(4), 0x1000), 0),
    ])
    start_of_second = []

    def watcher():
        port = tb.targ_ports[1]
        if port.request_fired:
            start_of_second.append(tb.sim.now - 1)

    tb.sim.add_clocked(watcher)
    tb.run_to_completion()
    assert start_of_second[0] < 10  # no blocking under Type III


@pytest.mark.parametrize("view,node_cls", VIEWS, ids=["rtl", "bca"])
def test_programming_port_write_and_readback(view, node_cls):
    cfg = NodeConfig(n_initiators=2, n_targets=1,
                     arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                     has_programming_port=True)
    tb = MiniTb(cfg, node_cls)
    prog = tb.prog_port
    done = {"write": False, "read": None}

    def master():
        if prog.fired:
            if prog.opc.value == T1_WRITE:
                done["write"] = True
            else:
                done["read"] = prog.rdata.value
        if not done["write"]:
            prog.req.drive(1)
            prog.opc.drive(T1_WRITE)
            prog.add.drive(4)  # register 1
            prog.wdata.drive(99)
            prog.be.drive(prog.be.mask)
        elif done["read"] is None:
            prog.req.drive(1)
            prog.opc.drive(T1_READ)
            prog.add.drive(4)
            prog.wdata.drive(0)
        else:
            prog.req.drive(0)

    tb.sim.add_clocked(master)
    tb.sim.elaborate()
    tb.sim.run_until(lambda: done["read"] is not None, 50)
    assert done["read"] == 99
    assert tb.node.prog_register(1) == 99


@pytest.mark.parametrize("view,node_cls", VIEWS, ids=["rtl", "bca"])
def test_priority_reprogramming_changes_grant_order(view, node_cls):
    """Before reprogramming, initiator 0 (priority 10) dominates; after
    boosting initiator 1 to 50, initiator 1 wins the contention."""
    cfg = NodeConfig(n_initiators=2, n_targets=1,
                     arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                     priorities=[10, 1], has_programming_port=True,
                     max_outstanding=4)
    tb = MiniTb(cfg, node_cls, target_latencies=[1])
    for i in range(2):
        tb.program(i, [
            (Transaction(Opcode.store(16), 0x40 * k + 0x400 * i,
                         data=bytes([i] * 16)), 0)
            for k in range(8)
        ])
    arrivals = []

    def watcher():
        port = tb.targ_ports[0]
        if port.request_fired and port.eop.value:
            arrivals.append((tb.sim.now - 1, port.src.value))

    wrote = {"done": False}

    def master():
        prog = tb.prog_port
        if prog.fired:
            wrote["done"] = True
        if not wrote["done"] and tb.sim.now >= 30:
            prog.req.drive(1)
            prog.opc.drive(T1_WRITE)
            prog.add.drive(4)
            prog.wdata.drive(50)
            prog.be.drive(prog.be.mask)
        else:
            prog.req.drive(0)

    tb.sim.add_clocked(watcher)
    tb.sim.add_clocked(master)
    tb.run_to_completion()
    early = [src for cyc, src in arrivals if cyc < 30]
    late = [src for cyc, src in arrivals if cyc > 40]
    assert early and early.count(0) > early.count(1)
    assert late and late.count(1) > late.count(0)


@pytest.mark.parametrize("view,node_cls", VIEWS, ids=["rtl", "bca"])
def test_shared_bus_serializes_request_cells(view, node_cls):
    """On a shared bus at most one request cell crosses per cycle, even
    with two initiator->target pairs that a crossbar would parallelize."""
    def total_cycles(architecture):
        cfg = NodeConfig(n_initiators=2, n_targets=2,
                         architecture=architecture,
                         arbitration=ArbitrationPolicy.ROUND_ROBIN,
                         max_outstanding=4)
        tb = MiniTb(cfg, node_cls, target_latencies=[1, 1])
        # Disjoint pairs: init0 -> targ0, init1 -> targ1.
        for i in range(2):
            tb.program(i, [
                (Transaction(Opcode.store(32), 0x1000 * i + 0x40 * k,
                             data=bytes([i] * 32)), 0)
                for k in range(4)
            ])
        return tb.run_to_completion()

    shared = total_cycles(Architecture.SHARED_BUS)
    crossbar = total_cycles(Architecture.FULL_CROSSBAR)
    # 2 x 4 packets x 8 cells: the crossbar overlaps them, the shared bus
    # cannot.
    assert shared > crossbar * 1.5, (shared, crossbar)


@pytest.mark.parametrize("view,node_cls", VIEWS, ids=["rtl", "bca"])
def test_bandwidth_limit_shapes_throughput(view, node_cls):
    """With allocations 12/1, initiator 1 is throttled hard while both
    saturate; the completion gap shows the token bucket working."""
    cfg = NodeConfig(n_initiators=2, n_targets=1,
                     arbitration=ArbitrationPolicy.BANDWIDTH_LIMITED,
                     bandwidth_allocations=[12, 1], bandwidth_window=16,
                     max_outstanding=4)
    tb = MiniTb(cfg, node_cls, target_latencies=[1])
    for i in range(2):
        tb.program(i, [
            (Transaction(Opcode.store(16), 0x40 * k + 0x800 * i,
                         data=bytes([i] * 16)), 0)
            for k in range(6)
        ])
    finish = {}

    def watcher():
        port = tb.targ_ports[0]
        if port.request_fired and port.eop.value:
            finish.setdefault(port.src.value, []).append(tb.sim.now - 1)

    tb.sim.add_clocked(watcher)
    tb.run_to_completion()
    # Initiator 0's 6 packets all land before initiator 1's last one.
    assert max(finish[0]) < max(finish[1])


def test_views_agree_on_all_detail_scenarios():
    """Meta-check: the scenarios above produce identical pin traces on
    both views (spot-check on the priciest one)."""
    cfg = NodeConfig(n_initiators=2, n_targets=1,
                     arbitration=ArbitrationPolicy.BANDWIDTH_LIMITED,
                     bandwidth_allocations=[12, 1], bandwidth_window=16,
                     max_outstanding=4)
    traces = {}
    for view, node_cls in VIEWS:
        tb = MiniTb(cfg, node_cls, target_latencies=[1])
        for i in range(2):
            tb.program(i, [
                (Transaction(Opcode.store(16), 0x40 * k + 0x800 * i,
                             data=bytes([i] * 16)), 0)
                for k in range(6)
            ])
        tb.sim.elaborate()
        ports = tb.init_ports + tb.targ_ports
        rows = []
        for _ in range(250):
            tb.sim.step()
            rows.append(tuple(s.value for p in ports for s in p.signals()))
        traces[view] = rows
    assert traces["rtl"] == traces["bca"]
