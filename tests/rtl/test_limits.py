"""Boundary-of-specification tests.

Section 5: "the Node can manage up to 32 initiators and 32 targets and
its data interface width varies from 8 to 256 bits."  These tests build
the extremes and prove they work in both views.
"""

import pytest

from repro.bca import BcaNode
from repro.rtl import RtlNode
from repro.stbus import (
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    ProtocolType,
    Transaction,
    response_data_from_cells,
)

from .util import MiniTb


@pytest.mark.parametrize("view,node_cls", [("rtl", RtlNode), ("bca", BcaNode)],
                         ids=["rtl", "bca"])
def test_256_bit_datapath(view, node_cls):
    """Widest legal bus: a 64-byte operation fits in two 32-byte cells."""
    cfg = NodeConfig(n_initiators=1, n_targets=1, data_width_bits=256)
    tb = MiniTb(cfg, node_cls)
    data = bytes(range(64))
    tb.program(0, [
        (Transaction(Opcode.store(64), 0x0, data=data), 0),
        (Transaction(Opcode.load(64), 0x0), 0),
        (Transaction(Opcode.store(1), 0x47, data=b"\x5A"), 0),
        (Transaction(Opcode.load(1), 0x47), 0),
    ])
    tb.run_to_completion()
    resp = tb.bfms[0].response_packets
    assert len(resp[0]) == 2  # 64B / 32B = 2 cells, Type II symmetric
    got = response_data_from_cells(resp[1], Opcode.load(64), 32, address=0x0)
    assert got == data
    sub = response_data_from_cells(resp[3], Opcode.load(1), 32, address=0x47)
    assert sub == b"\x5A"


def test_32x32_maximum_node_builds_and_routes():
    """The maximum port configuration works end to end (RTL view)."""
    cfg = NodeConfig(n_initiators=32, n_targets=32,
                     arbitration=ArbitrationPolicy.ROUND_ROBIN,
                     protocol_type=ProtocolType.T3)
    tb = MiniTb(cfg, RtlNode)
    # Every initiator hits "its own" target plus the shared target 0.
    for i in range(32):
        tb.program(i, [
            (Transaction(Opcode.store(4), 0x1000 * i + 4 * i,
                         data=bytes([i, i, i, i])), 0),
            (Transaction(Opcode.load(4), 0x1000 * i + 4 * i), 0),
        ])
    tb.run_to_completion(max_cycles=3000)
    for i in range(32):
        resp = tb.bfms[i].response_packets
        assert len(resp) == 2
        got = response_data_from_cells(resp[1], Opcode.load(4), 4,
                                       address=0x1000 * i + 4 * i)
        assert got == bytes([i, i, i, i])


def test_32x32_views_stay_aligned():
    """Even at maximum size, the two views are pin-identical."""
    cfg = NodeConfig(n_initiators=32, n_targets=32,
                     arbitration=ArbitrationPolicy.LRU)
    traces = {}
    for view, node_cls in (("rtl", RtlNode), ("bca", BcaNode)):
        tb = MiniTb(cfg, node_cls)
        for i in range(0, 32, 4):
            tb.program(i, [
                (Transaction(Opcode.store(8), 4096 * (i % 5) + 8 * i,
                             data=bytes([i] * 8)), 0),
            ])
        tb.sim.elaborate()
        ports = tb.init_ports + tb.targ_ports
        rows = []
        for _ in range(120):
            tb.sim.step()
            rows.append(tuple(s.value for p in ports for s in p.signals()))
        traces[view] = rows
    assert traces["rtl"] == traces["bca"]


def test_src_field_width_covers_32_initiators():
    from repro.stbus import SRC_WIDTH

    assert (1 << SRC_WIDTH) >= 32
