"""End-to-end smoke tests of the RTL node through BFM + target harness."""

import pytest

from repro.stbus import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    ProtocolType,
    response_data_from_cells,
)
from repro.rtl.node import RtlNode
from repro.stbus import Transaction

from .util import MiniTb


def test_single_store_load_roundtrip_t2():
    cfg = NodeConfig(n_initiators=1, n_targets=2, data_width_bits=32)
    tb = MiniTb(cfg, RtlNode)
    data = bytes([1, 2, 3, 4])
    tb.program(0, [
        (Transaction(Opcode.store(4), 0x0010, data=data), 0),
        (Transaction(Opcode.load(4), 0x0010), 0),
    ])
    tb.run_to_completion()
    bfm = tb.bfms[0]
    assert len(bfm.response_packets) == 2
    load_resp = bfm.response_packets[1]
    got = response_data_from_cells(load_resp, Opcode.load(4), 4, address=0x0010)
    assert got == data
    assert not any(c.is_error for c in load_resp)


def test_store_load_roundtrip_multicell_t2():
    cfg = NodeConfig(n_initiators=1, n_targets=1, data_width_bits=32)
    tb = MiniTb(cfg, RtlNode)
    data = bytes(range(16))
    tb.program(0, [
        (Transaction(Opcode.store(16), 0x0100, data=data), 0),
        (Transaction(Opcode.load(16), 0x0100), 0),
    ])
    tb.run_to_completion()
    resp = tb.bfms[0].response_packets
    # Type II symmetric: store response 4 cells, load response 4 cells.
    assert len(resp[0]) == 4
    assert len(resp[1]) == 4
    got = response_data_from_cells(resp[1], Opcode.load(16), 4, address=0x0100)
    assert got == data


def test_t3_asymmetric_lengths():
    cfg = NodeConfig(protocol_type=ProtocolType.T3, n_initiators=1,
                     n_targets=1, data_width_bits=32)
    tb = MiniTb(cfg, RtlNode)
    tb.program(0, [
        (Transaction(Opcode.store(16), 0x0000, data=bytes(16)), 0),
        (Transaction(Opcode.load(16), 0x0000), 0),
    ])
    tb.run_to_completion()
    resp = tb.bfms[0].response_packets
    assert len(resp[0]) == 1  # store ack, single cell
    assert len(resp[1]) == 4  # load data


def test_unwritten_memory_background_pattern():
    cfg = NodeConfig(n_initiators=1, n_targets=1)
    tb = MiniTb(cfg, RtlNode)
    tb.program(0, [(Transaction(Opcode.load(4), 0x0020), 0)])
    tb.run_to_completion()
    got = response_data_from_cells(
        tb.bfms[0].response_packets[0], Opcode.load(4), 4, address=0x20)
    assert got == bytes((0x20 + k) ^ 0xA5 for k in range(4))


def test_decode_error_gets_error_response():
    cfg = NodeConfig(n_initiators=1, n_targets=1)  # map covers 0x0000-0x0FFF
    tb = MiniTb(cfg, RtlNode)
    tb.program(0, [
        (Transaction(Opcode.load(4), 0x8000), 0),
        (Transaction(Opcode.store(4), 0x0040, data=b"\xAA" * 4), 0),
    ])
    tb.run_to_completion()
    resp = tb.bfms[0].response_packets
    assert len(resp) == 2
    assert all(c.is_error for c in resp[0])
    assert len(resp[0]) == 1  # T2 symmetric: load4 on 32-bit bus = 1 cell
    assert not any(c.is_error for c in resp[1])
    assert tb.node.stats["error_packets"] == 1


def test_rmw_returns_old_value_and_writes_new():
    cfg = NodeConfig(n_initiators=1, n_targets=1)
    tb = MiniTb(cfg, RtlNode)
    tb.program(0, [
        (Transaction(Opcode.store(4), 0x0000, data=b"\x11\x22\x33\x44"), 0),
        (Transaction(Opcode.rmw(4), 0x0000, data=b"\xAA\xBB\xCC\xDD"), 0),
        (Transaction(Opcode.load(4), 0x0000), 0),
    ])
    tb.run_to_completion()
    resp = tb.bfms[0].response_packets
    old = response_data_from_cells(resp[1], Opcode.rmw(4), 4)
    new = response_data_from_cells(resp[2], Opcode.load(4), 4)
    assert old == b"\x11\x22\x33\x44"
    assert new == b"\xAA\xBB\xCC\xDD"


def test_two_initiators_contend_fixed_priority():
    cfg = NodeConfig(n_initiators=2, n_targets=1,
                     arbitration=ArbitrationPolicy.FIXED_PRIORITY)
    tb = MiniTb(cfg, RtlNode)
    for i in range(2):
        tb.program(i, [
            (Transaction(Opcode.store(4), 0x0000 + 16 * i + 64 * k,
                         data=bytes([i] * 4)), 0)
            for k in range(5)
        ])
    tb.run_to_completion()
    assert len(tb.bfms[0].response_packets) == 5
    assert len(tb.bfms[1].response_packets) == 5


def test_shared_bus_completes_traffic():
    cfg = NodeConfig(n_initiators=2, n_targets=2,
                     architecture=Architecture.SHARED_BUS)
    tb = MiniTb(cfg, RtlNode)
    for i in range(2):
        tb.program(i, [
            (Transaction(Opcode.store(8), 0x0000 + 0x1000 * t + 32 * i,
                         data=bytes([i + t] * 8)), 1)
            for t in range(2)
        ])
    tb.run_to_completion()
    for i in range(2):
        assert len(tb.bfms[i].response_packets) == 2


def test_partial_crossbar_blocks_forbidden_path():
    cfg = NodeConfig(
        n_initiators=2, n_targets=2,
        architecture=Architecture.PARTIAL_CROSSBAR,
        connectivity=frozenset({(0, 0), (0, 1), (1, 1)}),
    )
    tb = MiniTb(cfg, RtlNode)
    # Initiator 1 -> target 0 is forbidden: node must answer with an error.
    tb.program(1, [(Transaction(Opcode.load(4), 0x0000), 0)])
    tb.program(0, [(Transaction(Opcode.load(4), 0x0000), 0)])
    tb.run_to_completion()
    assert not any(c.is_error for c in tb.bfms[0].response_packets[0])
    assert all(c.is_error for c in tb.bfms[1].response_packets[0])


def test_t3_out_of_order_responses_across_targets():
    cfg = NodeConfig(protocol_type=ProtocolType.T3, n_initiators=1,
                     n_targets=2, max_outstanding=4)
    tb = MiniTb(cfg, RtlNode, target_latencies=[20, 1])
    # First a load to the slow target, then one to the fast target: the
    # fast response must overtake (Type III allows it).
    tb.program(0, [
        (Transaction(Opcode.load(4), 0x0000), 0),   # target 0, slow
        (Transaction(Opcode.load(4), 0x1000), 0),   # target 1, fast
    ])
    tb.run_to_completion()
    resp = tb.bfms[0].response_packets
    assert len(resp) == 2
    # tid 1 (second txn) must arrive first.
    assert resp[0][0].r_tid == 1
    assert resp[1][0].r_tid == 0


def test_t2_keeps_responses_in_order_despite_slow_target():
    cfg = NodeConfig(protocol_type=ProtocolType.T2, n_initiators=1,
                     n_targets=2, max_outstanding=4)
    tb = MiniTb(cfg, RtlNode, target_latencies=[20, 1])
    tb.program(0, [
        (Transaction(Opcode.load(4), 0x0000), 0),
        (Transaction(Opcode.load(4), 0x1000), 0),
    ])
    tb.run_to_completion()
    resp = tb.bfms[0].response_packets
    assert [p[0].r_tid for p in resp] == [0, 1]


def test_pipe_depth_increases_latency():
    latencies = {}
    for depth in (1, 3):
        cfg = NodeConfig(n_initiators=1, n_targets=1, pipe_depth=depth)
        tb = MiniTb(cfg, RtlNode)
        txn = Transaction(Opcode.load(4), 0x0000)
        tb.program(0, [(txn, 0)])
        cycles = tb.run_to_completion()
        latencies[depth] = cycles
    # Each extra pipe stage adds one cycle in each direction.
    assert latencies[3] == latencies[1] + 4


def test_max_outstanding_throttles():
    cfg = NodeConfig(n_initiators=1, n_targets=1, max_outstanding=1)
    tb = MiniTb(cfg, RtlNode, target_latencies=[10])
    tb.program(0, [
        (Transaction(Opcode.load(4), 0x0000), 0) for _ in range(3)
    ])
    cycles = tb.run_to_completion()
    # With credit 1, each load waits for the previous response: >= 3 * 10.
    assert cycles >= 30
    assert len(tb.bfms[0].response_packets) == 3
