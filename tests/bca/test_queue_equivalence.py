"""TimedFifo (BCA) vs Pipe (RTL) lockstep equivalence.

The whole alignment story rests on the two abstractions having identical
observable timing; this property test drives both with the same random
accept/consume schedule and requires the visible output to match cycle by
cycle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bca.queues import TimedFifo
from repro.rtl.pipeline import Pipe


def test_fifo_basic_visibility():
    fifo = TimedFifo(2)
    fifo.push("a", visible_at=3)
    assert fifo.visible_head(2) is None
    assert fifo.visible_head(3) == "a"
    assert fifo.pop() == "a"
    assert fifo.visible_head(10) is None


def test_fifo_capacity():
    fifo = TimedFifo(1)
    fifo.push("a", 0)
    assert not fifo.can_accept(output_fired=False)
    assert fifo.can_accept(output_fired=True)
    with pytest.raises(OverflowError):
        fifo.push("b", 0)


def test_fifo_monotonic_visibility():
    fifo = TimedFifo(3)
    fifo.push("a", visible_at=10)
    fifo.push("b", visible_at=2)  # clamped: cannot overtake "a"
    fifo.pop()
    assert fifo.visible_head(5) is None
    assert fifo.visible_head(10) == "b"


def test_fifo_depth_validation():
    with pytest.raises(ValueError):
        TimedFifo(0)


def test_pipe_misuse_detected():
    pipe = Pipe(1)
    with pytest.raises(RuntimeError):
        pipe.advance(output_fired=True)
    pipe.advance(False, load="a")
    with pytest.raises(OverflowError):
        pipe.advance(False, load="b")


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60),
)
def test_pipe_fifo_lockstep_equivalence(depth, schedule):
    """Identical accept/consume decisions => identical visible outputs.

    Each schedule step decides (try_consume, try_load).  A consume only
    happens when the output is visible; a load only when both sides say
    they can accept (their can_accept must agree at all times).
    """
    pipe = Pipe(depth)
    fifo = TimedFifo(depth)
    next_item = 0
    for cycle, (try_consume, try_load) in enumerate(schedule):
        pipe_out = pipe.output
        fifo_out = fifo.visible_head(cycle)
        assert pipe_out == fifo_out, f"cycle {cycle}: {pipe_out} != {fifo_out}"
        fired = try_consume and pipe_out is not None
        can_pipe = pipe.can_accept(fired)
        can_fifo = fifo.can_accept(fired)
        assert can_pipe == can_fifo, f"cycle {cycle}: ready mismatch"
        load = next_item if (try_load and can_pipe) else None
        # Advance both abstractions one clock edge.
        pipe.advance(fired, load)
        if fired:
            fifo.pop()
        if load is not None:
            # A cell accepted at the edge ending cycle `cycle` reaches the
            # output stage `depth` cycles later.
            fifo.push(load, visible_at=cycle + depth)
            next_item += 1
