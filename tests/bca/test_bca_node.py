"""BCA node behaviour + cycle alignment with the RTL view.

The alignment tests run the identical testbench twice (RTL DUT, BCA DUT)
and compare every port signal on every cycle — a pin-level version of what
the STBus analyzer does on VCD files.
"""

import pytest

from repro.bca import ALL_BUGS, BcaNode, validate_bugs
from repro.rtl import RtlNode
from repro.stbus import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    Opcode,
    ProtocolType,
    Transaction,
    response_data_from_cells,
)

from ..rtl.util import MiniTb


def make_program(cfg, initiator, n=6):
    txns = []
    for k in range(n):
        target = (initiator + k) % cfg.n_targets
        base = 0x1000 * target + 64 * initiator + 8 * (k % 4)
        if k % 2:
            txns.append((Transaction(Opcode.load(4), base), k % 3))
        else:
            txns.append(
                (Transaction(Opcode.store(4), base,
                             data=bytes([initiator, k, 3, 4])), k % 3)
            )
    return txns


def run_view(cfg, node_cls, target_latencies=None, programs=None, bugs=()):
    tb = MiniTb(cfg, node_cls) if not bugs else None
    if bugs:
        # MiniTb builds the node itself; construct manually for bug runs.
        tb = MiniTb(cfg, lambda *a, **kw: BcaNode(*a, bugs=bugs, **kw))
    if target_latencies:
        for t, harness in enumerate(tb.targets):
            harness.latency = target_latencies[t]
    for i in range(cfg.n_initiators):
        tb.program(i, (programs or make_program)(cfg, i))
    tb.run_to_completion()
    return tb


def collect_trace(cfg, node_cls, cycles=400, **kwargs):
    """Per-cycle values of every DUT port signal."""
    tb = MiniTb(cfg, node_cls)
    for i in range(cfg.n_initiators):
        tb.program(i, make_program(cfg, i))
    tb.sim.elaborate()
    rows = []
    ports = tb.init_ports + tb.targ_ports
    for _ in range(cycles):
        tb.sim.step()
        rows.append(
            tuple(sig.value for port in ports for sig in port.signals())
        )
    return rows, tb


def test_bca_store_load_roundtrip():
    cfg = NodeConfig(n_initiators=1, n_targets=2)
    tb = MiniTb(cfg, BcaNode)
    data = bytes([9, 8, 7, 6])
    tb.program(0, [
        (Transaction(Opcode.store(4), 0x10, data=data), 0),
        (Transaction(Opcode.load(4), 0x10), 0),
    ])
    tb.run_to_completion()
    got = response_data_from_cells(
        tb.bfms[0].response_packets[1], Opcode.load(4), 4, address=0x10)
    assert got == data


def test_bca_decode_error():
    cfg = NodeConfig(n_initiators=1, n_targets=1)
    tb = MiniTb(cfg, BcaNode)
    tb.program(0, [(Transaction(Opcode.load(4), 0x9000), 0)])
    tb.run_to_completion()
    assert all(c.is_error for c in tb.bfms[0].response_packets[0])
    assert tb.node.stats["error_packets"] == 1


def test_bca_t3_out_of_order():
    cfg = NodeConfig(protocol_type=ProtocolType.T3, n_initiators=1, n_targets=2)
    tb = MiniTb(cfg, BcaNode, target_latencies=[20, 1])
    tb.program(0, [
        (Transaction(Opcode.load(4), 0x0000), 0),
        (Transaction(Opcode.load(4), 0x1000), 0),
    ])
    tb.run_to_completion()
    assert tb.bfms[0].response_packets[0][0].r_tid == 1


@pytest.mark.parametrize(
    "cfg",
    [
        NodeConfig(n_initiators=2, n_targets=2),
        NodeConfig(n_initiators=3, n_targets=2, pipe_depth=2,
                   arbitration=ArbitrationPolicy.LRU),
        NodeConfig(n_initiators=2, n_targets=3,
                   arbitration=ArbitrationPolicy.ROUND_ROBIN,
                   protocol_type=ProtocolType.T3),
        NodeConfig(n_initiators=2, n_targets=2,
                   architecture=Architecture.SHARED_BUS),
        NodeConfig(n_initiators=2, n_targets=2, data_width_bits=64,
                   arbitration=ArbitrationPolicy.LATENCY_BASED),
        NodeConfig(n_initiators=3, n_targets=2,
                   arbitration=ArbitrationPolicy.BANDWIDTH_LIMITED),
    ],
    ids=["t2-basic", "lru-pipe2", "t3-rr", "shared", "w64-latency", "bandwidth"],
)
def test_clean_bca_aligns_cycle_exact_with_rtl(cfg):
    rtl_rows, _ = collect_trace(cfg, RtlNode)
    bca_rows, _ = collect_trace(cfg, BcaNode)
    mismatches = [c for c, (a, b) in enumerate(zip(rtl_rows, bca_rows))
                  if a != b]
    assert not mismatches, f"first pin mismatch at cycle {mismatches[0]}"


def test_traffic_completes_under_each_bug():
    # Buggy models must still run to completion (bugs corrupt behaviour,
    # they don't hang the model) so the environment can observe them.
    cfg = NodeConfig(n_initiators=2, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU,
                     protocol_type=ProtocolType.T2)
    for bug in ALL_BUGS:
        tb = MiniTb(cfg, lambda *a, **kw: BcaNode(*a, bugs={bug}, **kw))
        for i in range(2):
            tb.program(i, [
                (Transaction(Opcode.store(8), 0x1000 * (k % 2) + 32 * i,
                             data=bytes([i] * 8)), 0)
                for k in range(4)
            ])
        tb.run_to_completion()
        for i in range(2):
            assert len(tb.bfms[i].response_packets) == 4, bug


def test_validate_bugs_rejects_unknown():
    with pytest.raises(ValueError):
        validate_bugs({"not-a-bug"})
    assert validate_bugs(None) == frozenset()
    assert validate_bugs(ALL_BUGS) == frozenset(ALL_BUGS)


def test_src_truncation_misroutes_with_many_initiators():
    cfg = NodeConfig(n_initiators=6, n_targets=1, max_outstanding=2,
                     protocol_type=ProtocolType.T3)
    tb = MiniTb(cfg, lambda *a, **kw: BcaNode(
        *a, bugs={"src-tag-truncation"}, **kw))
    # Initiator 5 truncates to src 1: its response goes to initiator 1.
    tb.program(5, [(Transaction(Opcode.load(4), 0x0000), 0)])
    tb.sim.elaborate()
    for _ in range(120):
        tb.sim.step()
    assert len(tb.bfms[5].response_packets) == 0
    assert len(tb.bfms[1].response_packets) == 1
