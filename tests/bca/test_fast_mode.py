"""Fast (standalone) BCA mode vs the pin-level BCA co-simulation.

The fast mode claims *identical semantics* with no signal kernel; these
tests hold it to that: same programs => same per-transaction request/
response completion cycles as the monitors observe in the pin-level run.
"""

import pytest

from repro.bca.fast import FastBcaSim, run_fast
from repro.catg import VerificationEnv
from repro.regression.testcases import TESTCASES, build_test
from repro.stbus import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    ProtocolType,
)


def pin_level_timestamps(config, test):
    env = VerificationEnv(config, view="bca", with_arbitration_checker=False)
    env.load_test(test)
    result = env.run()
    assert result.passed, result.report.violations[:4]
    requests = []
    responses = []
    for monitor in env.monitors:
        if monitor.role != "initiator":
            continue
        for obs in monitor.requests:
            requests.append((monitor.index, obs.tid, obs.end_cycle))
        for obs in monitor.responses:
            responses.append((monitor.index, obs.r_tid, obs.end_cycle))
    return sorted(requests), sorted(responses)


def fast_timestamps(config, test):
    result = run_fast(config, test)
    assert not result.timed_out
    requests = sorted(
        (t.initiator, t.tid, t.request_end) for t in result.completed
    )
    responses = sorted(
        (t.initiator, t.tid, t.response_end) for t in result.completed
    )
    return requests, responses


CONFIGS = [
    NodeConfig(n_initiators=2, n_targets=2, name="fast-t2"),
    NodeConfig(n_initiators=3, n_targets=2, protocol_type=ProtocolType.T3,
               arbitration=ArbitrationPolicy.LRU, name="fast-t3-lru"),
    NodeConfig(n_initiators=2, n_targets=2,
               architecture=Architecture.SHARED_BUS, name="fast-shared"),
    NodeConfig(n_initiators=2, n_targets=3, pipe_depth=3,
               protocol_type=ProtocolType.T3,
               arbitration=ArbitrationPolicy.ROUND_ROBIN, name="fast-pipe3"),
    NodeConfig(n_initiators=4, n_targets=2,
               arbitration=ArbitrationPolicy.BANDWIDTH_LIMITED,
               name="fast-bw"),
]

TESTS = ["t02_random_uniform", "t03_out_of_order", "t08_locked_chunks",
         "t12_decode_errors", "t10_hotspot"]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("test_name", TESTS)
def test_fast_mode_matches_pin_level_exactly(config, test_name):
    test_pin = build_test(test_name, config, seed=3)
    test_fast = build_test(test_name, config, seed=3)
    pin_req, pin_resp = pin_level_timestamps(config, test_pin)
    fast_req, fast_resp = fast_timestamps(config, test_fast)
    assert fast_req == pin_req
    assert fast_resp == pin_resp


def test_fast_mode_rejects_programming_port():
    config = NodeConfig(has_programming_port=True,
                        arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY)
    test = build_test("t07_priority_reprogramming", config, 1)
    with pytest.raises(ValueError):
        run_fast(config, test)
    with pytest.raises(ValueError):
        FastBcaSim(config, test.programs, test.target_latencies)


def test_fast_mode_reports_latency_and_throughput():
    config = NodeConfig(n_initiators=2, n_targets=2)
    result = run_fast(config, build_test("t02_random_uniform", config, 1))
    assert result.completed
    assert result.mean_latency() > 0
    assert 0 < result.throughput() < 1
    assert all(t.latency >= 2 for t in result.completed)


def test_fast_mode_error_responses_flagged():
    config = NodeConfig(n_initiators=2, n_targets=2)
    result = run_fast(config, build_test("t12_decode_errors", config, 1))
    assert any(t.is_error for t in result.completed)
    assert any(not t.is_error for t in result.completed)


def test_fast_mode_timeout_reported():
    config = NodeConfig(n_initiators=1, n_targets=1)
    test = build_test("t02_random_uniform", config, 1)
    sim = FastBcaSim(config, test.programs, test.target_latencies)
    result = sim.run(max_cycles=3)
    assert result.timed_out


def test_fast_result_percentiles_and_per_initiator():
    config = NodeConfig(n_initiators=2, n_targets=2)
    from repro.bca.fast import run_fast

    result = run_fast(config, build_test("t02_random_uniform", config, 1))
    p50 = result.latency_percentile(50)
    p95 = result.latency_percentile(95)
    p100 = result.latency_percentile(100)
    assert p50 <= p95 <= p100
    assert p100 == max(t.latency for t in result.completed)
    per_init = result.per_initiator_latency()
    assert set(per_init) == {0, 1}
    assert all(v > 0 for v in per_init.values())
    with pytest.raises(ValueError):
        result.latency_percentile(0)
    with pytest.raises(ValueError):
        result.latency_percentile(101)
