"""Symbolic strengthening of the dead-net rule.

Before the symbolic pass, only *declared* tie-offs exempted a
driven-but-never-observed net — a combinational process pinning a net to
a constant without declaring it produced a false dead-net warning.  The
lifted output function now proves the pin, so the warning is reserved
for nets that are genuinely dangling.
"""

from repro.kernel import Module, Simulator
from repro.lint.runner import lint_simulator


def _dead_nets(sim):
    report = lint_simulator(sim, design="t")
    return [f for f in report.findings if f.rule == "dead-net"]


def _base(sim):
    """A design where the dead-net rule is armed: all clocked reads
    declared, nothing traced."""
    top = Module(sim, "t")
    clk = top.signal("clk")
    sink = top.signal("sink")
    top.clocked(lambda: sink.drive(int(clk) ^ int(sink)), name="reg",
                reads=[clk, sink], writes=[sink])
    return top, clk


def test_proven_constant_pin_is_exempt_without_declaration():
    sim = Simulator()
    top, clk = _base(sim)
    pin = top.signal("pin")
    # Constantly driven, never read, never declared as a tie-off: the
    # old rule warned here; the lifted proof now exempts it.
    top.comb(lambda: pin.drive(1), [clk], name="tie")
    assert not _dead_nets(sim)


def test_input_dependent_dead_net_still_warns():
    sim = Simulator()
    top, clk = _base(sim)
    dangling = top.signal("dangling")
    top.comb(lambda: dangling.drive(int(clk)), [clk], name="drv")
    findings = _dead_nets(sim)
    assert len(findings) == 1
    assert findings[0].signal == "t.dangling"


def test_unliftable_constant_still_warns():
    """An OPAQUE writer proves nothing — the net may or may not be
    pinned, so the warning must survive."""
    state = {"v": 1}
    sim = Simulator()
    top, clk = _base(sim)
    pin = top.signal("pin")
    top.comb(lambda: pin.drive(state["v"]), [clk], name="mystery")
    findings = _dead_nets(sim)
    assert len(findings) == 1
    assert findings[0].signal == "t.pin"


def test_declared_tie_off_exemption_still_holds():
    sim = Simulator()
    top, clk = _base(sim)
    pin = top.signal("pin")
    top.clocked(lambda: pin.drive(0), name="tie",
                reads=[clk], writes=[pin], tie_offs={pin: 0})
    assert not _dead_nets(sim)
