"""CLI tests: exit codes, JSON output, waivers, design loading."""

import json

import pytest

from repro.lint.cli import main
from repro.regression.configs import configuration_matrix, save_config_dir


def test_demo_exits_nonzero_and_names_the_loop(capsys):
    assert main(["--demo"]) == 1
    out = capsys.readouterr().out
    assert "comb-loop" in out
    assert "demo.invert_b" in out and "demo.invert_a" in out
    assert "undriven-input" in out
    assert "demo.floating_in" in out


def test_demo_json_output(capsys):
    assert main(["--demo", "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["design"] == "lint-demo"
    assert data["errors"] >= 4
    rules = {f["rule"] for f in data["findings"]}
    assert "comb-loop" in rules and "width-mismatch" in rules


def test_waiving_everything_clears_the_gate(capsys):
    assert main(["--demo", "--waive", "*:*"]) == 0
    assert "waived" in capsys.readouterr().out


def test_strict_fails_on_warnings(capsys):
    # Keep only the warning-severity findings alive.
    argv = ["--demo", "--waive", "comb-loop:*", "--waive", "multi-driver:*",
            "--waive", "undriven-input:*", "--waive", "width-mismatch:*"]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv + ["--strict"]) == 1


def test_rule_selection(capsys):
    assert main(["--demo", "--rules", "dead-net"]) == 0  # warnings only
    out = capsys.readouterr().out
    assert "dead-net" in out
    assert "comb-loop" not in out


def test_unknown_rule_is_usage_error(capsys):
    assert main(["--demo", "--rules", "no-such-rule"]) == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("comb-loop", "multi-driver", "undriven-input",
                 "dead-net", "width-mismatch", "incomplete-sensitivity",
                 "xview-interface"):
        assert rule in out


def test_requires_exactly_one_source(capsys):
    assert main([]) == 2
    assert main(["--demo", "--matrix"]) == 2


def test_design_loading(capsys):
    assert main(["--design", "repro.lint.demo:build_defective_design"]) == 1
    assert main(["--design", "not-a-spec"]) == 2
    assert main(["--design", "repro.lint.demo:missing_attr"]) == 2


def test_config_dir_mode(tmp_path, capsys):
    save_config_dir(configuration_matrix(small=True)[:2], str(tmp_path))
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "cross-view interface OK" in out
    assert "linted 2 configuration(s) x 2 view(s)" in out


def test_config_dir_single_view(tmp_path, capsys):
    save_config_dir(configuration_matrix(small=True)[:1], str(tmp_path))
    assert main([str(tmp_path), "--view", "rtl"]) == 0
    out = capsys.readouterr().out
    assert "/rtl: CLEAN" in out
    assert "/bca" not in out


def test_waiver_file(tmp_path, capsys):
    waiver_file = tmp_path / "waivers.txt"
    waiver_file.write_text("* * # waive the world\n", encoding="utf-8")
    assert main(["--demo", "--waivers", str(waiver_file)]) == 0
    bad = tmp_path / "bad.txt"
    bad.write_text("too many tokens here\n", encoding="utf-8")
    capsys.readouterr()
    assert main(["--demo", "--waivers", str(bad)]) == 2
