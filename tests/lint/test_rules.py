"""Unit tests for the six static design rules and the waiver machinery."""

import pytest

from repro.kernel import Module, Simulator
from repro.lint import (
    DesignGraph,
    Severity,
    lint_simulator,
    parse_waivers,
)
from repro.lint.demo import build_defective_design


def _rules(report, rule):
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# comb-loop
# ---------------------------------------------------------------------------

def test_comb_loop_reports_full_path():
    sim = Simulator()
    top = Module(sim, "t")
    a, b = top.signal("a"), top.signal("b")

    def pa():
        a.drive(1 - int(b))

    def pb():
        b.drive(1 - int(a))

    top.comb(pa, [b], name="pa")
    top.comb(pb, [a], name="pb")
    report = lint_simulator(sim, design="loop")
    findings = _rules(report, "comb-loop")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.severity is Severity.ERROR
    # The path walks process -> signal -> process ... back to the start.
    assert finding.path[0] == finding.path[-1]
    assert set(finding.path) >= {"t.pa", "t.pb", "t.a", "t.b"}
    assert report.has_errors


def test_self_loop_detected():
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a")

    def toggle():
        a.drive(1 - int(a))

    top.comb(toggle, [a], name="toggle")
    report = lint_simulator(sim, design="selfloop")
    assert len(_rules(report, "comb-loop")) == 1


def test_registered_stage_breaks_the_loop():
    sim = Simulator()
    top = Module(sim, "t")
    a, b = top.signal("a"), top.signal("b")

    def comb_stage():
        a.drive(1 - int(b))

    def clocked_stage():
        b.drive(int(a))

    top.comb(comb_stage, [b], name="comb_stage")
    top.clocked(clocked_stage, name="clocked_stage",
                reads=[a], writes=[b])
    report = lint_simulator(sim, design="registered")
    assert not _rules(report, "comb-loop")


# ---------------------------------------------------------------------------
# multi-driver
# ---------------------------------------------------------------------------

def test_multi_driver_names_both_processes():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    out = top.signal("out")

    def one():
        out.drive(1)

    def two():
        out.drive(0)

    top.comb(one, [sel], name="one")
    top.comb(two, [sel], name="two")
    report = lint_simulator(sim, design="conflict")
    findings = _rules(report, "multi-driver")
    assert len(findings) == 1
    assert findings[0].signal == "t.out"
    assert "t.one" in findings[0].message
    assert "t.two" in findings[0].message


def test_comb_and_clocked_driver_conflict_detected():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    out = top.signal("out")

    def comb_drv():
        out.drive(int(sel))

    def clk_drv():
        out.drive(0)

    top.comb(comb_drv, [sel], name="comb_drv")
    top.clocked(clk_drv, name="clk_drv", reads=[], writes=[out])
    report = lint_simulator(sim, design="mixed-conflict")
    assert len(_rules(report, "multi-driver")) == 1


# ---------------------------------------------------------------------------
# incomplete-sensitivity
# ---------------------------------------------------------------------------

def test_incomplete_sensitivity_flags_unlisted_read():
    sim = Simulator()
    top = Module(sim, "t")
    a, b, out = top.signal("a"), top.signal("b"), top.signal("out")

    def gate():
        out.drive(int(a) & int(b))

    top.comb(gate, [a], name="gate")  # forgot b
    report = lint_simulator(sim, design="sens")
    findings = _rules(report, "incomplete-sensitivity")
    assert [f.signal for f in findings] == ["t.b"]
    assert findings[0].severity is Severity.WARNING


def test_complete_sensitivity_is_clean():
    sim = Simulator()
    top = Module(sim, "t")
    a, b, out = top.signal("a"), top.signal("b"), top.signal("out")

    def gate():
        out.drive(int(a) & int(b))

    top.comb(gate, [a, b], name="gate")
    report = lint_simulator(sim, design="sens-ok")
    assert not _rules(report, "incomplete-sensitivity")


# ---------------------------------------------------------------------------
# undriven-input / dead-net soundness guards
# ---------------------------------------------------------------------------

def _floating_input_design(declare):
    sim = Simulator()
    top = Module(sim, "t")
    floating = top.signal("floating")
    out = top.signal("out")
    reg = top.signal("reg")

    def mirror():
        out.drive(int(floating))

    def clk():
        reg.drive(1)

    top.comb(mirror, [floating], name="mirror")
    if declare:
        top.clocked(clk, name="clk", reads=[out], writes=[reg])
    else:
        top.clocked(clk, name="clk")
    return sim


def test_undriven_input_flagged_when_clocked_writes_declared():
    report = lint_simulator(_floating_input_design(declare=True))
    findings = _rules(report, "undriven-input")
    assert [f.signal for f in findings] == ["t.floating"]
    assert findings[0].severity is Severity.ERROR


def test_undriven_input_disabled_without_declarations():
    # An undeclared clocked process could drive anything: stay silent.
    report = lint_simulator(_floating_input_design(declare=False))
    assert not _rules(report, "undriven-input")


def test_dead_net_requires_declared_reads():
    sim = Simulator()
    top = Module(sim, "t")
    dead = top.signal("dead")

    def clk():
        dead.drive(1)

    top.clocked(clk, name="clk", reads=[], writes=[dead])
    report = lint_simulator(sim, design="dead")
    findings = _rules(report, "dead-net")
    assert [f.signal for f in findings] == ["t.dead"]
    assert findings[0].severity is Severity.WARNING


def test_dead_net_skips_proven_tie_offs():
    # A never-read net whose only driver declares it as a constant tie-off
    # is pinned on purpose (a BFM holding src at 0), not dangling.
    sim = Simulator()
    top = Module(sim, "t")
    tied = top.signal("tied")

    def clk():
        tied.drive(0)

    top.clocked(clk, name="clk", reads=[], writes=[tied],
                tie_offs={tied: 0})
    report = lint_simulator(sim, design="tied")
    assert not _rules(report, "dead-net")


def test_dead_net_still_fires_when_one_driver_is_not_a_tie_off():
    sim = Simulator()
    top = Module(sim, "t")
    tied = top.signal("tied")
    sel = top.signal("sel")

    def clk():
        tied.drive(0)

    top.clocked(clk, name="clk", reads=[], writes=[tied],
                tie_offs={tied: 0})
    top.comb(lambda: tied.drive(int(sel)), [sel], name="mux")
    report = lint_simulator(sim, design="mixed")
    assert [f.signal for f in _rules(report, "dead-net")] == ["t.tied"]


def test_dead_net_silent_when_design_is_traced():
    from repro.kernel import Tracer

    class NullTracer(Tracer):
        def declare(self, signal):
            pass

        def sample(self, cycle, signals):
            pass

    sim = Simulator()
    top = Module(sim, "t")
    dead = top.signal("dead")

    def clk():
        dead.drive(1)

    top.clocked(clk, name="clk", reads=[], writes=[dead])
    sim.add_tracer(NullTracer())
    report = lint_simulator(sim, design="traced")
    assert not _rules(report, "dead-net")


# ---------------------------------------------------------------------------
# width-mismatch
# ---------------------------------------------------------------------------

def test_width_mismatch_names_process_and_value():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    narrow = top.signal("narrow", width=4)

    def overdrive():
        narrow.drive(0x1F)

    top.comb(overdrive, [sel], name="overdrive")
    report = lint_simulator(sim, design="width")
    findings = _rules(report, "width-mismatch")
    assert len(findings) == 1
    assert findings[0].signal == "t.narrow"
    assert "t.overdrive" in findings[0].message
    assert "31" in findings[0].message


# ---------------------------------------------------------------------------
# no simulation happened
# ---------------------------------------------------------------------------

def test_lint_never_advances_simulation_time():
    sim = build_defective_design()
    report = lint_simulator(sim, design="demo")
    assert sim.now == 0
    assert report.has_errors


def test_demo_design_triggers_every_rule():
    report = lint_simulator(build_defective_design(), design="demo")
    fired = {f.rule for f in report.findings}
    assert fired >= {
        "comb-loop",
        "multi-driver",
        "undriven-input",
        "width-mismatch",
        "incomplete-sensitivity",
        "dead-net",
    }


# ---------------------------------------------------------------------------
# waivers
# ---------------------------------------------------------------------------

def test_waivers_suppress_but_keep_findings():
    waivers = parse_waivers(
        "comb-loop demo.* # known oscillator\n"
        "\n"
        "# full-line comment\n"
        "dead-net *\n"
    )
    assert waivers[0].reason == "known oscillator"
    report = lint_simulator(build_defective_design(), design="demo",
                            waivers=waivers)
    waived_rules = {f.rule for f in report.findings if f.waived}
    assert "comb-loop" in waived_rules
    assert "dead-net" in waived_rules
    # Waived findings no longer gate...
    assert not any(
        f.rule == "comb-loop" for f in report.errors
    )
    # ...but unrelated errors still do.
    assert report.has_errors


def test_waiver_parse_error():
    from repro.lint import WaiverError

    with pytest.raises(WaiverError):
        parse_waivers("only-one-token\n")


# ---------------------------------------------------------------------------
# graph plumbing
# ---------------------------------------------------------------------------

def test_design_graph_requires_elaboration():
    sim = Simulator()
    with pytest.raises(ValueError):
        DesignGraph(sim)
    graph = DesignGraph.from_simulator(sim)
    assert graph.signals == []
    assert sim.elaborated
