"""Post-elaboration fast-path contracts.

After ``elaborate()`` the kernel swaps every bound signal to the
unguarded fast accessors (the dry-run attribution hooks only exist
during elaboration).  These tests pin down that the switch is
observable only as speed: every error diagnostic, the driver
bookkeeping and the lint dry run behave exactly as before.
"""

import pytest

from repro.kernel import (
    Module,
    MultipleDriverError,
    Signal,
    Simulator,
    WidthError,
)
from repro.kernel.signal import _FastSignal


def _elaborated_pair():
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    b = top.signal("b", width=4)
    top.comb(lambda: b.drive(a.value), [a], name="follow")
    sim.elaborate()
    return sim, top, a, b


def test_signals_switch_to_fast_path_after_elaborate():
    sim = Simulator()
    sig = sim.signal("s", width=8)
    assert type(sig) is Signal
    sim.elaborate()
    assert type(sig) is _FastSignal
    assert isinstance(sig, Signal)  # still a Signal to every consumer


def test_unbound_signal_keeps_slow_path():
    sig = Signal("lonely", width=8)
    sig._enable_fast_path()
    assert type(sig) is Signal


def test_fast_path_reads_and_writes_still_work():
    sim, top, a, b = _elaborated_pair()
    a.drive(7)
    sim.step()
    assert a.value == 7
    assert int(b) == 7
    assert bool(a)
    assert [0, 1, 2, 3, 4, 5, 6, 7, 8][a] == 7  # __index__
    a.next = 3
    sim.step()
    assert b.value == 3


def test_fast_path_width_error_names_signal():
    sim = Simulator()
    top = Module(sim, "t")
    narrow = top.signal("narrow", width=3)

    def overdrive():
        narrow.drive(0x10)

    top.clocked(overdrive, name="overdrive", writes=[narrow])
    sim.elaborate()
    assert type(narrow) is _FastSignal
    with pytest.raises(WidthError) as excinfo:
        sim.step()
    message = str(excinfo.value)
    assert "'t.narrow'" in message
    assert "16" in message
    assert "3 bits" in message


def test_fast_path_multiple_driver_names_both_processes():
    sim = Simulator()
    top = Module(sim, "t")
    out = top.signal("out", width=4)
    tick = top.signal("tick")

    def proc_a():
        out.drive(1)

    def proc_b():
        out.drive(2)

    top.clocked(proc_a, name="first", writes=[out])
    top.clocked(proc_b, name="second", writes=[out])
    top.clocked(lambda: tick.drive(1 - tick.value), name="ticker",
                reads=[tick], writes=[tick])
    sim.elaborate()
    with pytest.raises(MultipleDriverError) as excinfo:
        sim.step()
    message = str(excinfo.value)
    assert "'t.out'" in message
    assert "t.first" in message
    assert "t.second" in message
    assert "same delta cycle" in message


def test_fast_path_driver_bookkeeping_ordered_and_deduped():
    sim = Simulator()
    top = Module(sim, "t")
    out = top.signal("out", width=8)
    tick = top.signal("tick")

    def writer():
        out.drive(sim.now & 0xFF)

    top.clocked(writer, name="writer", writes=[out])
    top.clocked(lambda: tick.drive(1 - tick.value), name="ticker",
                reads=[tick], writes=[tick])
    sim.elaborate()
    for _ in range(5):
        sim.step()
    # Driven every cycle by one process: recorded exactly once.
    assert out.driver_names() == ("t.writer",)
    # External drives (no active process) are not recorded.
    out.drive(99)
    assert out.driver_names() == ("t.writer",)


def test_dry_run_attribution_survives_fast_path_refactor():
    """The lint dry run happens *during* elaborate, before the switch."""
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    b = top.signal("b", width=4)
    top.comb(lambda: b.drive(a.value + 0), [a], name="follow")
    sim.elaborate()
    info = sim.comb_processes[0]
    assert a in info.observed_reads
    assert b in info.observed_writes
    # Hooks are gone: post-elaboration accesses attribute nothing new.
    before = set(info.observed_reads)
    sim.step()
    assert info.observed_reads == before


def test_fast_path_conflict_same_process_redrive_allowed():
    sim, top, a, b = _elaborated_pair()
    # External writer may recompute its own pending value.
    a.drive(1)
    a.drive(2)
    sim.step()
    assert a.value == 2


def test_process_label_lookup_matches_registration_names():
    sim = Simulator()
    top = Module(sim, "t")
    s = top.signal("s")

    def clk():
        s.drive(1)

    def comb():
        pass

    top.clocked(clk, name="myclk", writes=[s])
    top.comb(comb, [s], name="mycomb")
    assert sim.process_label(clk) == "t.myclk"
    assert sim.process_label(comb) == "t.mycomb"
    assert sim.process_label(None) == "<external>"
    # Unregistered callables fall back to their qualified name.
    assert sim.process_label(print) == "print"


def test_poke_commits_immediately_on_unbound_signal():
    sig = Signal("s", width=8)
    sig.poke(42)
    assert sig.value == 42
    sig.poke(42)  # idempotent re-poke
    assert sig.value == 42
    with pytest.raises(WidthError):
        sig.poke(300)
