"""Integration tests for the cycle scheduler: clocked/comb semantics."""

import pytest

from repro.kernel import (
    DeltaOverflowError,
    ElaborationError,
    Module,
    Simulator,
    SimulatorError,
)


def make_counter(sim, width=8):
    count = sim.signal("count", width=width)

    def tick():
        count.drive((count.value + 1) & count.mask)

    sim.add_clocked(tick)
    return count


def test_clocked_counter_advances_per_cycle():
    sim = Simulator()
    count = make_counter(sim)
    sim.elaborate()
    sim.run(5)
    assert count.value == 5
    assert sim.now == 5


def test_comb_settles_through_chain():
    # a -> b -> c combinational chain must settle within one cycle.
    sim = Simulator()
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    c = sim.signal("c", width=8)

    sim.add_comb(lambda: b.drive(a.value + 1 if a.value < 255 else 0), [a])
    sim.add_comb(lambda: c.drive(b.value + 1 if b.value < 255 else 0), [b])

    def drive_a():
        a.drive(10)

    sim.add_clocked(drive_a)
    sim.elaborate()
    # After elaboration (a=0): b=1, c=2.
    assert (b.value, c.value) == (1, 2)
    sim.step()
    assert (a.value, b.value, c.value) == (10, 11, 12)


def test_clocked_reads_pre_edge_values():
    # A register chain: q2 must lag q1 by exactly one cycle.
    sim = Simulator()
    d = sim.signal("d", width=8)
    q1 = sim.signal("q1", width=8)
    q2 = sim.signal("q2", width=8)

    def regs():
        q1.drive(d.value)
        q2.drive(q1.value)

    sim.add_clocked(regs)
    sim.elaborate()
    d.drive(7)
    sim._settle()
    sim.step()
    assert (q1.value, q2.value) == (7, 0)
    sim.step()
    assert (q1.value, q2.value) == (7, 7)


def test_oscillating_comb_raises():
    sim = Simulator()
    a = sim.signal("a")
    sim.add_comb(lambda: a.drive(1 - a.value), [a])
    # The loop toggles forever; elaboration settles combinational logic,
    # so the oscillation is detected right there.
    with pytest.raises(DeltaOverflowError):
        sim.elaborate()


def test_elaborate_twice_rejected():
    sim = Simulator()
    sim.elaborate()
    with pytest.raises(ElaborationError):
        sim.elaborate()


def test_step_before_elaborate_rejected():
    sim = Simulator()
    with pytest.raises(ElaborationError):
        sim.step()


def test_add_after_elaborate_rejected():
    sim = Simulator()
    sim.elaborate()
    with pytest.raises(ElaborationError):
        sim.signal("late")
    with pytest.raises(ElaborationError):
        sim.add_clocked(lambda: None)
    with pytest.raises(ElaborationError):
        sim.add_comb(lambda: None, [])


def test_empty_sensitivity_rejected():
    sim = Simulator()
    with pytest.raises(SimulatorError):
        sim.add_comb(lambda: None, [])


def test_run_until_returns_cycle_count():
    sim = Simulator()
    count = make_counter(sim)
    sim.elaborate()
    executed = sim.run_until(lambda: count.value == 3, max_cycles=10)
    assert executed == 3


def test_run_until_timeout_raises():
    sim = Simulator()
    make_counter(sim)
    sim.elaborate()
    with pytest.raises(SimulatorError):
        sim.run_until(lambda: False, max_cycles=4)


def test_module_hierarchy_names():
    sim = Simulator()
    top = Module(sim, "top")
    child = Module(sim, "dut", parent=top)
    sig = child.signal("req")
    assert sig.name == "top.dut.req"
    assert child in top.children


def test_module_add_child_renames():
    sim = Simulator()
    top = Module(sim, "top")
    orphan = Module(sim, "late")
    top.add_child(orphan)
    assert orphan.name == "top.late"


def test_finish_idempotent():
    sim = Simulator()
    sim.elaborate()
    sim.finish()
    sim.finish()
    with pytest.raises(SimulatorError):
        sim.step()


def test_comb_only_wakes_on_sensitivity():
    sim = Simulator()
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    out = sim.signal("out", width=8)
    calls = []

    def proc():
        calls.append(sim.now)
        out.drive(a.value)

    sim.add_comb(proc, [a])
    sim.add_clocked(lambda: b.drive((b.value + 1) & 0xFF))
    sim.elaborate()
    n_calls = len(calls)
    sim.run(3)  # only b changes; proc must not rerun
    assert len(calls) == n_calls
