"""Unit tests for the compiled levelized kernel (repro.kernel.compiled)."""

import pytest

from repro.kernel import (
    ElaborationError,
    MultipleDriverError,
    DeltaOverflowError,
    Simulator,
)
from repro.kernel.compiled import (
    KERNELS,
    CompiledKernel,
    compile_simulator,
    maybe_compile,
)
from repro.kernel.signal import _ElidingSignal, _FastSignal


def _chain_sim(declare_writes=True):
    """Clocked counter feeding a 3-deep comb chain."""
    sim = Simulator()
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    c = sim.signal("c", width=8)
    d = sim.signal("d", width=8)
    sim.add_comb(lambda: b.drive((a.value + 1) & 0xFF), [a], name="pb")
    sim.add_comb(lambda: c.drive((b.value + 1) & 0xFF), [b], name="pc")
    sim.add_comb(lambda: d.drive((c.value + 1) & 0xFF), [c], name="pd")
    kwargs = {"writes": (a,), "reads": (a,)} if declare_writes else {}
    sim.add_clocked(lambda: a.drive((a.value + 1) & 0xFF), name="tick",
                    **kwargs)
    return sim, (a, b, c, d)


def _values(signals):
    return tuple(sig.value for sig in signals)


def _run_both(build, cycles, **compile_kwargs):
    """Run the same design under delta and compiled; return final values."""
    sim_d, sigs_d = build()
    sim_d.elaborate()
    sim_d.run(cycles)
    sim_c, sigs_c = build()
    sim_c.elaborate()
    kernel = compile_simulator(sim_c, **compile_kwargs)
    sim_c.run(cycles)
    return _values(sigs_d), _values(sigs_c), sim_d, sim_c, kernel


def test_compiled_chain_matches_delta_with_zero_deltas():
    ref, got, sim_d, sim_c, kernel = _run_both(_chain_sim, 10)
    assert got == ref
    assert sim_c.stat_deltas == 0
    assert sim_d.stat_deltas > 0
    assert kernel.fallback_cycles == 0
    # 3 one-process levels, every one dirty every cycle.
    assert sim_c.stat_levels_evaluated == 30
    stats = sim_c.stats_snapshot()
    assert stats["delta_iterations"] == 0
    assert stats["levels_evaluated"] == 30


def test_compiled_counts_skipped_levels_on_idle_cycles():
    def build():
        sim = Simulator()
        a = sim.signal("a", width=8)
        b = sim.signal("b", width=8)
        sim.add_comb(lambda: b.drive(a.value), [a], name="pb")
        # Holds a constant: after the first cycle every commit is empty.
        sim.add_clocked(lambda: a.drive(7), name="hold",
                        reads=(), writes=(a,))
        return sim, (a, b)

    ref, got, _, sim_c, kernel = _run_both(build, 5)
    assert got == ref == (7, 7)
    # Cycle 1 evaluates the level (a: 0 -> 7); the elided redundant
    # drives of 7 afterwards commit nothing, so the remaining 4 cycles
    # skip the level wholesale.
    assert sim_c.stat_levels_evaluated == 1
    assert sim_c.stat_levels_skipped == 4


def test_dirty_cone_skips_untouched_branch():
    def build():
        sim = Simulator()
        a = sim.signal("a", width=8)
        quiet = sim.signal("quiet", width=8)
        b = sim.signal("b", width=8)
        q = sim.signal("q", width=8)
        sim.add_comb(lambda: b.drive(a.value), [a], name="pb")
        sim.add_comb(lambda: q.drive(quiet.value), [quiet], name="pq")
        sim.add_clocked(lambda: a.drive((a.value + 1) & 0xFF), name="tick",
                        reads=(a,), writes=(a,))
        return sim, (a, quiet, b, q)

    ref, got, _, sim_c, _ = _run_both(build, 6)
    assert got == ref
    # pb and pq share level 0; pq's input never toggles.  The dirty-cone
    # check keeps its activations at zero (1 clocked + 1 comb per cycle).
    assert sim_c.stat_activations == 12


def test_island_design_matches_delta_and_uses_local_loop():
    def build():
        sim = Simulator()
        stim = sim.signal("stim", width=8)
        x = sim.signal("x", width=8)
        y = sim.signal("y", width=8)
        sim.add_comb(lambda: x.drive(max(stim.value, y.value)),
                     [stim, y], name="px")
        sim.add_comb(lambda: y.drive(x.value), [x], name="py")
        sim.add_clocked(lambda: stim.drive((stim.value + 1) & 0xFF),
                        name="tick", reads=(stim,), writes=(stim,))
        return sim, (stim, x, y)

    ref, got, sim_d, sim_c, kernel = _run_both(build, 8)
    assert got == ref
    assert not kernel.schedule.acyclic
    # The feedback pair settles through the island's local delta loop.
    assert sim_c.stat_deltas > 0
    assert kernel.fallback_cycles == 0


def test_unobserved_write_triggers_guarded_fallback():
    def build():
        sim = Simulator()
        a = sim.signal("a", width=8)
        b = sim.signal("b", width=8)
        c = sim.signal("c", width=8)
        d = sim.signal("d", width=8)

        def pa():
            b.drive(a.value)
            if a.value == 5:
                # Invisible to the elaboration dry run (a == 0 there):
                # the schedule has no pa -> pc edge.
                c.drive(1)

        sim.add_comb(pa, [a], name="pa")
        sim.add_comb(lambda: d.drive(c.value + 2), [c], name="pc")
        sim.add_clocked(lambda: a.drive((a.value + 1) & 0xFF), name="tick",
                        reads=(a,), writes=(a,))
        return sim, (a, b, c, d)

    ref, got, _, sim_c, kernel = _run_both(build, 8)
    assert got == ref
    assert got[3] == 3  # d followed the hidden write to c
    assert kernel.fallback_cycles == 1


def test_multiple_driver_message_identical_across_kernels():
    def build():
        sim = Simulator()
        a = sim.signal("a", width=8)
        sim.add_clocked(lambda: a.drive(1), name="first",
                        reads=(), writes=(a,))
        sim.add_clocked(lambda: a.drive(2), name="second",
                        reads=(), writes=(a,))
        return sim

    messages = []
    for compiled in (False, True):
        sim = build()
        sim.elaborate()
        if compiled:
            compile_simulator(sim)
        with pytest.raises(MultipleDriverError) as excinfo:
            sim.step()
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]
    assert "process first" in messages[0]
    assert "process second" in messages[0]


def test_delta_overflow_message_identical_across_kernels():
    def build():
        sim = Simulator()
        go = sim.signal("go")
        x = sim.signal("x")
        y = sim.signal("y")
        # Oscillates once go is raised: x = not y, y = x.
        sim.add_comb(lambda: x.drive((1 - y.value) if go.value else 0),
                     [go, y], name="px")
        sim.add_comb(lambda: y.drive(x.value), [x], name="py")
        sim.add_clocked(lambda: go.drive(1), name="arm",
                        reads=(), writes=(go,))
        return sim

    messages = []
    for compiled in (False, True):
        sim = build()
        sim.elaborate()
        if compiled:
            kernel = compile_simulator(sim)
            assert not kernel.schedule.acyclic
        with pytest.raises(DeltaOverflowError) as excinfo:
            sim.step()
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]
    assert "did not settle" in messages[0]


def test_elision_requires_declared_single_writer():
    sim, (a, b, c, d) = _chain_sim(declare_writes=True)
    sim.elaborate()
    kernel = compile_simulator(sim)
    assert type(a) is _ElidingSignal
    assert kernel.elided
    kernel.detach()
    assert type(a) is _FastSignal
    assert sim._compiled is None

    # Without declared clocked writes the writer index is untrusted:
    # nothing may be elided.
    sim2, (a2, _, _, _) = _chain_sim(declare_writes=False)
    sim2.elaborate()
    kernel2 = compile_simulator(sim2)
    assert kernel2.elided == ()
    assert type(a2) is _FastSignal


def test_multi_writer_signal_is_never_elided():
    sim = Simulator()
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    sim.add_clocked(lambda: a.drive(1), name="w1", reads=(), writes=(a,))
    sim.add_clocked(lambda: a.drive(1), name="w2", reads=(), writes=(a,))
    sim.add_comb(lambda: b.drive(a.value), [a], name="pb")
    sim.elaborate()
    kernel = compile_simulator(sim)
    assert a not in kernel.elided
    assert type(a) is _FastSignal


def test_timing_mode_uses_generic_path_and_matches():
    def build():
        return _chain_sim()

    sim_d, sigs_d = _chain_sim()
    sim_d.enable_process_timing()
    sim_d.elaborate()
    sim_d.run(6)
    sim_c, sigs_c = _chain_sim()
    sim_c.enable_process_timing()
    sim_c.elaborate()
    compile_simulator(sim_c)
    sim_c.run(6)
    assert _values(sigs_c) == _values(sigs_d)
    times = sim_c.process_times()
    assert set(times) == {"tick", "pb", "pc", "pd"}
    assert times["tick"][0] == 6  # one activation per cycle


def test_specialize_false_interpreter_matches():
    ref, got, _, sim_c, kernel = _run_both(
        _chain_sim, 10, specialize=False)
    assert got == ref
    assert sim_c.stat_deltas == 0
    assert not kernel.specialize


def test_dirty_cones_false_still_matches():
    ref, got, _, sim_c, kernel = _run_both(
        _chain_sim, 10, dirty_cones=False)
    assert got == ref
    assert sim_c.stat_deltas == 0
    assert not kernel.dirty_cones


def test_generated_source_is_kept_for_inspection():
    sim, _ = _chain_sim()
    sim.elaborate()
    kernel = compile_simulator(sim)
    assert "def cycle():" in kernel.source
    assert "COMMIT()" in kernel.source


def test_compile_requires_elaboration():
    sim, _ = _chain_sim()
    with pytest.raises(ElaborationError):
        CompiledKernel(sim)


def test_double_attach_rejected():
    sim, _ = _chain_sim()
    sim.elaborate()
    kernel = compile_simulator(sim)
    assert kernel.attach() is kernel  # idempotent for the same kernel
    with pytest.raises(ElaborationError):
        CompiledKernel(sim).attach()


def test_maybe_compile_engine_selection():
    assert KERNELS == ("delta", "compiled", "auto")
    sim, _ = _chain_sim()
    sim.elaborate()
    assert maybe_compile(sim, "delta") is None
    assert sim._compiled is None
    kernel = maybe_compile(sim, "auto")
    assert kernel is not None and sim._compiled is kernel
    kernel.detach()
    with pytest.raises(ValueError):
        maybe_compile(sim, "turbo")


def test_maybe_compile_auto_declines_island_designs():
    sim = Simulator()
    stim = sim.signal("stim", width=8)
    x = sim.signal("x", width=8)
    y = sim.signal("y", width=8)
    sim.add_comb(lambda: x.drive(max(stim.value, y.value)),
                 [stim, y], name="px")
    sim.add_comb(lambda: y.drive(x.value), [x], name="py")
    sim.add_clocked(lambda: stim.drive(1), name="tick",
                    reads=(), writes=(stim,))
    sim.elaborate()
    assert maybe_compile(sim, "auto") is None
    assert sim._compiled is None
    # "compiled" still attaches: islands degrade, they don't disable.
    kernel = maybe_compile(sim, "compiled")
    assert kernel is not None and sim._compiled is kernel


def test_describe_reports_ablation_switches():
    sim, _ = _chain_sim()
    sim.elaborate()
    kernel = compile_simulator(sim, dirty_cones=False)
    info = kernel.describe()
    assert info["acyclic"] is True
    assert info["dirty_cones"] is False
    assert info["specialize"] is True
    assert info["fallback_cycles"] == 0
    assert info["elided_signals"] == len(kernel.elided)
