"""Kernel error diagnostics: every failure names the offender.

The static lint pass leans on these diagnostics (harvested during
elaboration), so the messages are contract, not cosmetics.
"""

import pytest

from repro.kernel import (
    DeltaOverflowError,
    Module,
    MultipleDriverError,
    Simulator,
    WidthError,
)


def _two_signal_loop():
    """a = not b, b = not a — the canonical unsettleable pair."""
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a")
    b = top.signal("b")

    def invert_b():
        a.drive(1 - int(b))

    def invert_a():
        b.drive(1 - int(a))

    top.comb(invert_b, [b], name="invert_b")
    top.comb(invert_a, [a], name="invert_a")
    return sim, a, b


def test_delta_overflow_names_toggling_signals():
    sim, a, b = _two_signal_loop()
    with pytest.raises(DeltaOverflowError) as excinfo:
        sim.elaborate()
    message = str(excinfo.value)
    assert "did not settle" in message
    assert "t.a" in message or "t.b" in message


def test_delta_overflow_harvested_not_raised_in_lint_mode():
    sim, _, _ = _two_signal_loop()
    sim.elaborate(harvest_errors=True)  # must not raise
    harvested = [exc for _, exc in sim.elaboration_errors]
    assert any(isinstance(exc, DeltaOverflowError) for exc in harvested)


def test_multiple_driver_names_signal_and_both_processes():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    out = top.signal("out")

    def first():
        out.drive(1)

    def second():
        out.drive(0)

    top.comb(first, [sel], name="first")
    top.comb(second, [sel], name="second")
    with pytest.raises(MultipleDriverError) as excinfo:
        sim.elaborate()
    message = str(excinfo.value)
    assert "'t.out'" in message
    assert "t.first" in message
    assert "t.second" in message
    assert "same delta cycle" in message


def test_width_error_on_external_drive_names_signal():
    sim = Simulator()
    top = Module(sim, "t")
    narrow = top.signal("narrow", width=3)
    with pytest.raises(WidthError) as excinfo:
        narrow.drive(9)
    message = str(excinfo.value)
    assert "'t.narrow'" in message
    assert "9" in message
    assert "3 bits" in message


def test_width_error_inside_clocked_process_names_signal():
    sim = Simulator()
    top = Module(sim, "t")
    narrow = top.signal("narrow", width=3)

    def overdrive():
        narrow.drive(0x10)

    top.clocked(overdrive, name="overdrive", writes=[narrow])
    sim.elaborate()
    with pytest.raises(WidthError) as excinfo:
        sim.step()
    assert "'t.narrow'" in str(excinfo.value)


def test_signal_records_distinct_driver_names():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    out = top.signal("out")

    def drv():
        out.drive(int(sel))

    top.comb(drv, [sel], name="drv")
    sim.elaborate()
    assert out.driver_names() == ("t.drv",)
    # External (process-less) drives are not recorded as drivers.
    sel.drive(1)
    assert sel.driver_names() == ()
