"""Byte-identity of the compiled kernel against the interpreted one.

The compiled levelized kernel's contract is not "close enough": every
artifact — VCD bytes, verification report text, coverage report text —
must be byte-identical to the interpreted delta loop's, for every
configuration, both design views, and with injected BCA bugs (a bug the
delta loop catches must fail identically under the compiled kernel).

By default a representative sample of the Section 5 configuration
matrix runs; set ``REPRO_FULL_MATRIX=1`` (the CI ``compiled`` job does)
to sweep all 38 configurations.
"""

import io
import os

import pytest

from repro.bca import ALL_BUGS
from repro.catg.env import run_test
from repro.kernel import Simulator
from repro.kernel.compiled import compile_simulator
from repro.regression.configs import configuration_matrix
from repro.regression.testcases import build_test
from repro.vcd import VcdWriter

FULL_MATRIX = os.environ.get("REPRO_FULL_MATRIX") == "1"

#: Indices into the 38-config matrix for the default (fast) sample:
#: both protocols, several arbitration policies, a partial crossbar and
#: the widest port-count shapes.
_SAMPLE = (0, 2, 7, 13, 19, 25, 31, 37)

_MATRIX = configuration_matrix(small=False)
_CONFIGS = _MATRIX if FULL_MATRIX else [_MATRIX[i] for i in _SAMPLE]


def _artifacts(config, view, tmp_path, kernel, test_name="t02_random_uniform",
               seed=1, bugs=()):
    """(vcd bytes, report text, coverage text) for one run."""
    vcd_path = str(tmp_path / f"{config.name}_{view}_{kernel}.vcd")
    test = build_test(test_name, config, seed)
    result = run_test(config, test, view=view, bugs=bugs,
                      vcd_path=vcd_path, kernel=kernel)
    with open(vcd_path, "rb") as handle:
        vcd = handle.read()
    return vcd, result.report.render(), result.coverage.render(), result


@pytest.mark.parametrize(
    "config", _CONFIGS, ids=lambda config: config.name)
def test_matrix_artifacts_byte_identical(config, tmp_path):
    for view in ("rtl", "bca"):
        ref = _artifacts(config, view, tmp_path, "delta")
        got = _artifacts(config, view, tmp_path, "compiled")
        assert got[0] == ref[0], f"{config.name}/{view}: VCD bytes differ"
        assert got[1] == ref[1], f"{config.name}/{view}: report differs"
        assert got[2] == ref[2], f"{config.name}/{view}: coverage differs"
        assert got[3].passed == ref[3].passed
        assert got[3].cycles == ref[3].cycles


@pytest.mark.parametrize("bug", sorted(ALL_BUGS))
def test_injected_bugs_fail_identically(bug, tmp_path):
    # A seeded BCA bug must produce the same verdict AND the same
    # report text (violation wording, cycle numbers) on both engines.
    config = _MATRIX[2]  # LRU 3x2: exercised by every injectable bug
    ref = _artifacts(config, "bca", tmp_path, "delta",
                     test_name="t10_hotspot", bugs=(bug,))
    got = _artifacts(config, "bca", tmp_path, "compiled",
                     test_name="t10_hotspot", bugs=(bug,))
    assert got[0] == ref[0]
    assert got[1] == ref[1]
    assert got[3].passed == ref[3].passed


def _cyclic_design():
    """A settling feedback pair plus straight logic around it."""
    sim = Simulator()
    buf = io.StringIO()
    sim.add_tracer(VcdWriter(buf))
    stim = sim.signal("tb.stim", width=8)
    pre = sim.signal("tb.pre", width=8)
    x = sim.signal("tb.x", width=8)
    y = sim.signal("tb.y", width=8)
    out = sim.signal("tb.out", width=8)
    sim.add_comb(lambda: pre.drive(stim.value ^ 0x0F), [stim], name="ppre")
    sim.add_comb(lambda: x.drive(max(pre.value, y.value)), [pre, y],
                 name="px")
    sim.add_comb(lambda: y.drive(x.value & 0x7F), [x], name="py")
    sim.add_comb(lambda: out.drive((y.value + 1) & 0xFF), [y], name="pout")
    sim.add_clocked(lambda: stim.drive((stim.value * 5 + 1) & 0xFF),
                    name="tick", reads=(stim,), writes=(stim,))
    return sim, buf


def test_cyclic_design_vcd_identical_via_island_fallback():
    sim_d, buf_d = _cyclic_design()
    sim_d.elaborate()
    sim_d.run(40)
    sim_d.finish()

    sim_c, buf_c = _cyclic_design()
    sim_c.elaborate()
    kernel = compile_simulator(sim_c)
    assert not kernel.schedule.acyclic  # px/py really are an island
    assert kernel.schedule.n_straight == 2  # ppre + pout stay levelized
    sim_c.run(40)
    sim_c.finish()

    assert buf_c.getvalue() == buf_d.getvalue()
    # The island settled through its local delta loop, not the global one.
    assert sim_c.stat_deltas > 0
    assert kernel.fallback_cycles == 0
