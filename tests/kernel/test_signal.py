"""Unit tests for Signal commit semantics."""

import pytest

from repro.kernel import (
    MultipleDriverError,
    Signal,
    SignalError,
    Simulator,
    WidthError,
)


def test_initial_value():
    sig = Signal("s", width=8, init=5)
    assert sig.value == 5
    assert int(sig) == 5


def test_width_one_default():
    sig = Signal("s")
    assert sig.width == 1
    assert sig.mask == 1


def test_zero_width_rejected():
    with pytest.raises(WidthError):
        Signal("s", width=0)


def test_init_out_of_range_rejected():
    with pytest.raises(WidthError):
        Signal("s", width=2, init=4)


def test_drive_is_deferred_until_commit():
    sig = Signal("s", width=8)
    sig.drive(42)
    assert sig.value == 0
    assert sig.next == 42
    assert sig._commit() is True
    assert sig.value == 42


def test_commit_reports_no_change():
    sig = Signal("s", width=8, init=7)
    sig.drive(7)
    assert sig._commit() is False


def test_drive_out_of_range_rejected():
    sig = Signal("s", width=4)
    with pytest.raises(WidthError):
        sig.drive(16)
    with pytest.raises(WidthError):
        sig.drive(-1)


def test_bool_and_index():
    sig = Signal("s", width=4, init=3)
    assert bool(sig)
    assert [10, 11, 12, 13][sig] == 13


def test_next_property_setter():
    sig = Signal("s", width=8)
    sig.next = 9
    sig._commit()
    assert sig.value == 9


def test_same_value_redrive_allowed():
    sig = Signal("s", width=8)
    sig.drive(3)
    sig.drive(3)
    sig._commit()
    assert sig.value == 3


def test_conflicting_drive_same_writer_allowed():
    # Without a simulator both writes appear to come from writer None;
    # the last one wins (a process may recompute its own output).
    sig = Signal("s", width=8)
    sig.drive(3)
    sig.drive(4)
    sig._commit()
    assert sig.value == 4


def test_conflicting_drivers_detected_in_simulation():
    sim = Simulator()
    sig = sim.signal("s", width=8)
    trigger = sim.signal("t")

    def proc_a():
        sig.drive(1)

    def proc_b():
        sig.drive(2)

    sim.add_comb(proc_a, [trigger])
    sim.add_comb(proc_b, [trigger])
    with pytest.raises(MultipleDriverError):
        sim.elaborate()


def test_rebind_to_other_simulator_rejected():
    sim_a = Simulator()
    sim_b = Simulator()
    sig = sim_a.signal("s")
    with pytest.raises(SignalError):
        sig._bind(sim_b)


def test_duplicate_name_rejected():
    sim = Simulator()
    sim.signal("s")
    with pytest.raises(SignalError):
        sim.signal("s")
