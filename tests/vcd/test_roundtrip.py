"""VCD writer/parser round-trip and format tests."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Simulator
from repro.vcd import (
    VcdParseError,
    VcdWriter,
    dump_to_string,
    make_identifier,
    parse_vcd,
)


def test_identifier_sequence_unique():
    ids = [make_identifier(i) for i in range(500)]
    assert len(set(ids)) == 500
    assert ids[0] == "!"
    assert all(33 <= ord(c) <= 126 for ident in ids for c in ident)


def test_identifier_negative_rejected():
    with pytest.raises(ValueError):
        make_identifier(-1)


def simulate_counter_vcd(cycles=5):
    buf = io.StringIO()
    sim = Simulator()
    writer = VcdWriter(buf)
    sim.add_tracer(writer)
    count = sim.signal("top.count", width=8)
    flag = sim.signal("top.dut.flag", width=1)
    sim.add_clocked(lambda: count.drive((count.value + 1) & 0xFF))
    sim.add_comb(lambda: flag.drive(count.value & 1), [count])
    sim.elaborate()
    sim.run(cycles)
    sim.finish()
    return buf.getvalue()


def test_roundtrip_counter():
    text = simulate_counter_vcd(cycles=6)
    vcd = parse_vcd(text)
    assert vcd.timescale == 10
    assert "top.count" in vcd
    assert "top.dut.flag" in vcd
    assert vcd.n_cycles == 6
    # Cycle c shows the post-edge value c+1.
    assert vcd["top.count"].expand(6, vcd.timescale) == [1, 2, 3, 4, 5, 6]
    assert vcd["top.dut.flag"].expand(6, vcd.timescale) == [1, 0, 1, 0, 1, 0]


def test_scope_hierarchy_emitted():
    text = simulate_counter_vcd(cycles=1)
    assert "$scope module top $end" in text
    assert "$scope module dut $end" in text
    assert text.count("$upscope $end") == 2


def test_dump_to_string_and_value_at():
    rows = [{"a": 0, "b": 5}, {"a": 1, "b": 5}, {"a": 1, "b": 9}]
    text = dump_to_string(rows, {"a": 1, "b": 8})
    vcd = parse_vcd(text)
    assert vcd["a"].expand(3, vcd.timescale) == [0, 1, 1]
    assert vcd["b"].expand(3, vcd.timescale) == [5, 5, 9]
    assert vcd["b"].value_at(0) == 5
    assert vcd["b"].value_at(25) == 9


def test_parse_file_path(tmp_path):
    path = tmp_path / "wave.vcd"
    path.write_text(simulate_counter_vcd(3), encoding="ascii")
    vcd = parse_vcd(str(path))
    assert vcd.n_cycles == 3


def test_parse_rejects_garbage():
    with pytest.raises(VcdParseError):
        parse_vcd("$nonsense\nstuff\n")


def test_parse_rejects_undeclared_id():
    text = (
        "$timescale 10ns $end\n"
        "$var wire 1 ! a $end\n"
        "$enddefinitions $end\n"
        "#0\n1%\n"
    )
    with pytest.raises(VcdParseError):
        parse_vcd(text)


def test_parse_handles_x_and_z():
    text = (
        "$timescale 10ns $end\n"
        "$var wire 4 ! a $end\n"
        "$enddefinitions $end\n"
        "#0\nb1x1z !\n#10\n"
    )
    vcd = parse_vcd(text)
    assert vcd["a"].value_at(0) == 0b1010


def test_writer_only_emits_changes():
    text = simulate_counter_vcd(cycles=4)
    # flag toggles every cycle, count changes every cycle: each cycle
    # emits a timestamp. But a constant signal would not re-emit.
    assert text.count("#") >= 4


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=255),
                  st.integers(min_value=0, max_value=1)),
        min_size=1,
        max_size=40,
    )
)
def test_roundtrip_property(rows):
    """Whatever per-cycle samples we write, parsing recovers them exactly."""
    sample_rows = [{"x": x, "y": y} for x, y in rows]
    text = dump_to_string(sample_rows, {"x": 8, "y": 1})
    vcd = parse_vcd(text)
    assert vcd["x"].expand(len(rows), vcd.timescale) == [x for x, _ in rows]
    assert vcd["y"].expand(len(rows), vcd.timescale) == [y for _, y in rows]
