"""Golden-output tests for the metrics digest and its CLI."""

import json

import pytest

from repro.telemetry import METRICS_SCHEMA, SummaryError, summarize_metrics
from repro.telemetry.cli import main as telemetry_main


def make_payload():
    """A small, fully-populated metrics rollup with unambiguous numbers."""
    return {
        "schema": METRICS_SCHEMA,
        "batch": {
            "wall_seconds": 12.345678,
            "jobs": 2,
            "n_runs": 2,
            "n_configs": 1,
            "all_signed_off": True,
            "kernel_totals": {"cycles": 2000, "delta_iterations": 5000},
            "phase_totals": {"elaborate": 1.25, "run": 10.5},
            "workers": {
                "worker-0": {"pid": 11, "n_jobs": 1, "busy_seconds": 6.0,
                             "utilization": 0.5},
                "worker-1": {"pid": 12, "n_jobs": 1, "busy_seconds": 5.5,
                             "utilization": 0.45},
                "main": {"pid": 1, "n_jobs": 1, "busy_seconds": 0.5,
                         "utilization": 0.04},
            },
        },
        "runs": [
            {"config": "cfg_a", "test": "t01_smoke", "seed": 1,
             "view": "bca", "passed": True, "cycles": 400,
             "wall_seconds": 1.25, "kernel": {},
             "phase_seconds": {"run": 1.0}},
            {"config": "cfg_a", "test": "t01_smoke", "seed": 1,
             "view": "rtl", "passed": True, "cycles": 400,
             "wall_seconds": 3.5, "kernel": {},
             "phase_seconds": {"elaborate": 0.25, "finalize": 0.1,
                               "run": 3.0},
             "process_seconds": {"dut.arb": [400, 0.9],
                                 "tb.probe": [400, 0.2]}},
        ],
        "compares": [
            {"config": "cfg_a", "test": "t01_smoke", "seed": 1,
             "min_rate": 0.9876, "overall_rate": 0.999, "seconds": 0.75},
        ],
        "histograms": {},
    }


GOLDEN = """\
Batch: 2 runs over 1 configuration(s), jobs=2, wall 12.35s, all signed off
Kernel totals: cycles=2000  delta_iterations=5000
Phase totals: run 10.50s  elaborate 1.25s
Worker utilization:
  worker-0     1 jobs      6.00s busy   50.0%
  worker-1     1 jobs      5.50s busy   45.0%
  main         1 jobs      0.50s busy    4.0%
Slowest runs:
  1. 3.500s  cfg_a t01_smoke seed=1 rtl (run 3.000s, elaborate 0.250s)
  2. 1.250s  cfg_a t01_smoke seed=1 bca (run 1.000s)
Hottest kernel processes:
  1. 0.900s  dut.arb (400 activations)
  2. 0.200s  tb.probe (400 activations)
Worst alignment:
  1.  98.76%  cfg_a t01_smoke seed=1 (compare 0.750s)
"""


def test_summarize_golden_output():
    assert summarize_metrics(make_payload()) == GOLDEN


def test_summarize_top_limits_rankings():
    text = summarize_metrics(make_payload(), top=1)
    assert "1. 3.500s" in text
    assert "2. 1.250s" not in text
    assert "2. 0.200s" not in text


def test_summarize_without_process_timing_hints_at_flag():
    payload = make_payload()
    for run in payload["runs"]:
        run.pop("process_seconds", None)
    text = summarize_metrics(payload)
    assert "rerun with --time-processes" in text


def test_summarize_rejects_wrong_schema():
    with pytest.raises(SummaryError):
        summarize_metrics({"schema": "something/else"})
    with pytest.raises(SummaryError):
        summarize_metrics({})


def test_cli_summarize_golden(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(make_payload()), encoding="utf-8")
    code = telemetry_main(["summarize", str(path)])
    captured = capsys.readouterr()
    assert code == 0
    assert captured.out == GOLDEN
    assert captured.err == ""


def test_cli_summarize_missing_file(tmp_path, capsys):
    code = telemetry_main(["summarize", str(tmp_path / "ghost.json")])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert captured.out == ""


def test_cli_summarize_wrong_schema(tmp_path, capsys):
    path = tmp_path / "not_metrics.json"
    path.write_text('{"schema": "nope"}', encoding="utf-8")
    code = telemetry_main(["summarize", str(path)])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_cli_summarize_rejects_bad_top(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(make_payload()), encoding="utf-8")
    code = telemetry_main(["summarize", str(path), "--top", "0"])
    assert code == 2
    assert "--top" in capsys.readouterr().err
