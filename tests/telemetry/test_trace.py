"""Span tracing: recording, lane assignment and Chrome trace export."""

import json

from repro.telemetry import (
    NULL_TRACE,
    TraceCollector,
    assign_lanes,
    chrome_trace_payload,
    span_seconds,
    write_chrome_trace,
)
from repro.telemetry.trace import NULL_SPAN


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, start=100.0, step=0.25):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def test_span_records_complete_event_with_args():
    trace = TraceCollector(clock=FakeClock(), pid=1234)
    with trace.span("elaborate", config="cfg_a", seed=7):
        pass
    (event,) = trace.events
    assert event["name"] == "elaborate"
    assert event["ph"] == "X"
    assert event["pid"] == 1234
    assert event["ts"] == 100_000_000
    assert event["dur"] == 250_000
    assert event["args"] == {"config": "cfg_a", "seed": 7}


def test_span_records_even_when_body_raises():
    trace = TraceCollector(clock=FakeClock())
    try:
        with trace.span("run"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [e["name"] for e in trace.events] == ["run"]


def test_nested_spans_record_inner_first():
    trace = TraceCollector(clock=FakeClock())
    with trace.span("outer"):
        with trace.span("inner"):
            pass
    names = [e["name"] for e in trace.events]
    assert names == ["inner", "outer"]
    inner, outer = trace.events
    # the outer span fully contains the inner one
    assert outer["ts"] <= inner["ts"]
    assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]


def test_instant_event():
    trace = TraceCollector(clock=FakeClock(), pid=9)
    trace.instant("marker", detail="x")
    (event,) = trace.events
    assert event["ph"] == "i"
    assert event["args"] == {"detail": "x"}


def test_disabled_collector_shares_null_span_and_records_nothing():
    trace = TraceCollector(enabled=False)
    span = trace.span("anything", key="value")
    assert span is NULL_SPAN
    with span:
        pass
    trace.instant("marker")
    assert trace.events == []
    assert NULL_TRACE.span("x") is NULL_SPAN


def test_span_seconds_totals_by_name():
    trace = TraceCollector(clock=FakeClock(step=0.5))
    with trace.span("run"):
        pass
    with trace.span("run"):
        pass
    with trace.span("report"):
        pass
    trace.instant("ignored")
    totals = span_seconds(trace.events)
    assert totals == {"run": 1.0, "report": 0.5}


def test_assign_lanes_orders_workers_by_first_event():
    events = [
        {"name": "a", "ph": "X", "ts": 300, "dur": 1, "pid": 333},
        {"name": "b", "ph": "X", "ts": 100, "dur": 1, "pid": 111},
        {"name": "c", "ph": "X", "ts": 200, "dur": 1, "pid": 222},
        {"name": "m", "ph": "X", "ts": 50, "dur": 1, "pid": 999},
    ]
    lanes = assign_lanes(events, main_pid=999)
    assert lanes[999] == (0, "main")
    assert lanes[111] == (1, "worker-0")
    assert lanes[222] == (2, "worker-1")
    assert lanes[333] == (3, "worker-2")


def test_chrome_trace_payload_remaps_pids_to_lanes():
    events = [
        {"name": "job", "ph": "X", "ts": 10, "dur": 5, "pid": 111},
        {"name": "batch", "ph": "X", "ts": 0, "dur": 20, "pid": 999},
    ]
    payload = chrome_trace_payload(
        events, lanes=assign_lanes(events, main_pid=999),
        process_name="test batch",
    )
    out = payload["traceEvents"]
    meta = [e for e in out if e["ph"] == "M"]
    assert meta[0]["args"] == {"name": "test batch"}
    thread_names = {e["tid"]: e["args"]["name"] for e in meta[1:]}
    assert thread_names == {0: "main", 1: "worker-0"}
    spans = [e for e in out if e["ph"] == "X"]
    assert all(e["pid"] == 1 for e in spans)
    assert {e["name"]: e["tid"] for e in spans} == {"job": 1, "batch": 0}
    # the source events were not mutated
    assert events[0]["pid"] == 111


def test_write_chrome_trace_round_trips(tmp_path):
    trace = TraceCollector(clock=FakeClock(), pid=42)
    with trace.span("phase"):
        pass
    path = str(tmp_path / "trace.json")
    write_chrome_trace(path, trace.events,
                       lanes=assign_lanes(trace.events, main_pid=42))
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["displayTimeUnit"] == "ms"
    names = [e["name"] for e in payload["traceEvents"]]
    assert "process_name" in names
    assert "thread_name" in names
    assert "phase" in names
