"""Structured JSON-lines run logging."""

import io
import json

from repro.telemetry import NULL_LOG, RunLogger


def _fixed_clock():
    return 1234.5


def test_stream_sink_emits_one_json_object_per_line():
    stream = io.StringIO()
    logger = RunLogger(stream=stream, _clock=_fixed_clock)
    logger.log("batch.start", jobs=2)
    logger.log("batch.complete", ok=True)
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first == {"event": "batch.start", "ts": 1234.5, "jobs": 2}


def test_bound_context_lands_in_every_record():
    stream = io.StringIO()
    logger = RunLogger(stream=stream, _clock=_fixed_clock,
                       context={"config": "cfg_a"})
    child = logger.bind(test="t01", seed=3, view="rtl")
    child.log("run.complete", passed=True)
    record = json.loads(stream.getvalue())
    assert record["config"] == "cfg_a"
    assert record["test"] == "t01"
    assert record["seed"] == 3
    assert record["view"] == "rtl"
    assert record["passed"] is True
    # binding does not mutate the parent
    logger.log("other")
    parent_record = json.loads(stream.getvalue().splitlines()[1])
    assert "test" not in parent_record


def test_path_sink_owns_its_file(tmp_path):
    path = str(tmp_path / "run.log.jsonl")
    logger = RunLogger(path=path, _clock=_fixed_clock)
    logger.log("event.one")
    logger.close()
    with open(path, "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    assert [r["event"] for r in records] == ["event.one"]


def test_buffer_mode_collects_picklable_records():
    import pickle

    logger = RunLogger(buffer=True, _clock=_fixed_clock,
                       context={"view": "bca"})
    logger.log("run.timeout", max_cycles=500)
    assert logger.records == [{
        "event": "run.timeout", "ts": 1234.5, "view": "bca",
        "max_cycles": 500,
    }]
    pickle.loads(pickle.dumps(logger.records))


def test_write_record_replays_verbatim():
    stream = io.StringIO()
    logger = RunLogger(stream=stream)
    logger.write_record({"event": "replayed", "ts": 1.0, "seed": 9})
    assert json.loads(stream.getvalue()) == {
        "event": "replayed", "ts": 1.0, "seed": 9,
    }


def test_sink_less_and_disabled_loggers_are_inert():
    assert not RunLogger().enabled  # no sink, no buffer
    assert not NULL_LOG.enabled
    NULL_LOG.log("anything", much=True)
    assert NULL_LOG.records == []
    child = NULL_LOG.bind(config="x")
    child.log("still.nothing")
    assert child.records == []
