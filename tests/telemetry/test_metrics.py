"""Metric registry: instruments, snapshots and the zero-cost null mode."""

import pytest

from repro.telemetry import (
    MetricError,
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    merge_histogram_snapshots,
)
from repro.telemetry.metrics import Histogram


def test_counter_accumulates():
    reg = MetricRegistry()
    reg.counter("kernel.cycles").inc()
    reg.counter("kernel.cycles").inc(41)
    assert reg.counter("kernel.cycles").value == 42


def test_counter_is_memoized():
    reg = MetricRegistry()
    assert reg.counter("a") is reg.counter("a")


def test_gauge_last_value_wins():
    reg = MetricRegistry()
    reg.gauge("queue.depth").set(3)
    reg.gauge("queue.depth").set(1.5)
    assert reg.gauge("queue.depth").value == 1.5


def test_histogram_buckets_and_stats():
    hist = Histogram("h", buckets=(0.5, 0.9, 1.0))
    for value in (0.2, 0.5, 0.95, 1.0, 1.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 5
    assert snap["min"] == 0.2
    assert snap["max"] == 1.0
    assert snap["bounds"] == [0.5, 0.9, 1.0]
    # bisect_left: 0.2,0.5 <= 0.5 | nothing in (0.5,0.9] | 0.95,1.0,1.0
    assert snap["counts"] == [2, 0, 3, 0]
    assert snap["sum"] == pytest.approx(3.65)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(MetricError):
        Histogram("h", buckets=(1.0, 0.5))


def test_histogram_bucket_conflict_detected():
    reg = MetricRegistry()
    reg.histogram("h", buckets=(0.5, 1.0))
    with pytest.raises(MetricError):
        reg.histogram("h", buckets=(0.9, 1.0))


def test_name_reuse_across_kinds_rejected():
    reg = MetricRegistry()
    reg.counter("x")
    with pytest.raises(MetricError):
        reg.gauge("x")
    with pytest.raises(MetricError):
        reg.histogram("x")


def test_inc_many_with_prefix():
    reg = MetricRegistry()
    reg.inc_many({"cycles": 10, "deltas": 3}.items(), prefix="kernel.")
    snap = reg.snapshot()
    assert snap["counters"] == {"kernel.cycles": 10, "kernel.deltas": 3}


def test_snapshot_is_sorted_and_json_able():
    import json

    reg = MetricRegistry()
    reg.counter("b").inc(2)
    reg.counter("a").inc(1)
    reg.gauge("g").set(0.5)
    reg.histogram("h", buckets=(1.0,)).observe(0.3)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    json.dumps(snap)  # must not raise


def test_merge_histogram_snapshots():
    a = Histogram("h", buckets=(0.5, 1.0))
    b = Histogram("h", buckets=(0.5, 1.0))
    a.observe(0.2)
    a.observe(0.7)
    b.observe(0.9)
    b.observe(1.5)
    merged = {}
    merge_histogram_snapshots(merged, a.snapshot())
    merge_histogram_snapshots(merged, b.snapshot())
    assert merged["count"] == 4
    assert merged["min"] == 0.2
    assert merged["max"] == 1.5
    assert merged["counts"] == [1, 2, 1]
    # merging must not alias the source snapshot's lists
    a_snap = a.snapshot()
    merged2 = {}
    merge_histogram_snapshots(merged2, a_snap)
    merge_histogram_snapshots(merged2, b.snapshot())
    assert a_snap["counts"] == [1, 1, 0]


def test_merge_rejects_mismatched_bounds():
    a = Histogram("h", buckets=(0.5,))
    b = Histogram("h", buckets=(0.9,))
    a.observe(0.1)
    b.observe(0.1)
    merged = {}
    merge_histogram_snapshots(merged, a.snapshot())
    with pytest.raises(MetricError):
        merge_histogram_snapshots(merged, b.snapshot())


# -- the disabled path: shared no-op singletons, no state, no growth -------


def test_disabled_registry_hands_out_shared_singletons():
    reg = MetricRegistry(enabled=False)
    assert reg.counter("anything") is NULL_COUNTER
    assert reg.gauge("anything") is NULL_GAUGE
    assert reg.histogram("anything", buckets=(1.0,)) is NULL_HISTOGRAM
    # every name maps to the same object: no per-name allocation
    assert reg.counter("a") is reg.counter("b")


def test_null_instruments_ignore_everything():
    NULL_COUNTER.inc()
    NULL_COUNTER.inc(1000)
    NULL_GAUGE.set(42.0)
    NULL_HISTOGRAM.observe(0.5)
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0.0
    assert NULL_HISTOGRAM.count == 0
    assert NULL_HISTOGRAM.snapshot() == {}


def test_disabled_registry_accumulates_no_state():
    reg = MetricRegistry(enabled=False)
    for index in range(100):
        reg.counter(f"c{index}").inc()
        reg.inc_many([(f"k{index}", 1)])
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_null_registry_is_disabled():
    assert not NULL_REGISTRY.enabled
    assert NULL_REGISTRY.counter("x") is NULL_COUNTER
