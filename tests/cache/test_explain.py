"""Tests for ``python -m repro.cache explain``.

The command's contract: every component of an entry's cache key is
printed (design hash, config digest, test, seed, view, bugs, checker
flag) alongside an integrity verdict, so a surprising miss is
diagnosable instead of opaque.  Exit status 0 = verified, 1 = entry
exists but fails verification, 2 = usage error.
"""

import hashlib
import json
import os

import pytest

from repro.cache import ResultCache, design_source_hash
from repro.cache.cli import USAGE_EXIT, main as cache_main
from repro.cache.store import _entry_digest
from repro.regression.parallel import RunJob, execute_run_job
from repro.regression.resilience import run_artifact_paths
from repro.stbus import NodeConfig, ProtocolType


def _job(workdir):
    os.makedirs(str(workdir), exist_ok=True)
    stem = os.path.join(str(workdir), "entry__rtl")
    config = NodeConfig(n_initiators=2, n_targets=2,
                        protocol_type=ProtocolType.T3, name="cache_cfg")
    return RunJob(config=config, test_name="t01_sanity_write_read",
                  seed=1, view="rtl", vcd_path=stem + ".vcd",
                  report_stem=stem, bugs=frozenset(),
                  with_arbitration_checker=True)


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    """One real executed-and-stored entry, shared across tests."""
    tmp_path = tmp_path_factory.mktemp("explain")
    job = _job(tmp_path / "work")
    result = execute_run_job(job)
    cache = ResultCache(str(tmp_path / "cache"))
    path = cache.store(job, result, run_artifact_paths(job))
    assert path is not None
    return job, cache, path


def test_explain_by_path(stored, capsys):
    job, cache, path = stored
    assert cache_main(["explain", path]) == 0
    out = capsys.readouterr().out
    assert "integrity: verified" in out
    assert "key components:" in out
    assert f"design: {design_source_hash()}" in out
    assert "monolithic design-source hash" in out
    expected_cfg = hashlib.sha256(
        job.config.to_text().encode("utf-8")).hexdigest()
    assert f"config sha256: {expected_cfg}" in out
    assert "test: t01_sanity_write_read" in out
    assert "seed: 1" in out
    assert "view: rtl" in out
    assert "bugs: (none)" in out
    assert "with_arbitration_checker: True" in out


def test_explain_by_key_with_root(stored, capsys):
    job, cache, path = stored
    key = os.path.basename(path).split(".", 1)[0]
    assert cache_main(["explain", key, "--root", cache.root]) == 0
    assert "integrity: verified" in capsys.readouterr().out


def test_explain_by_key_with_env_root(stored, capsys, monkeypatch):
    job, cache, path = stored
    key = os.path.basename(path).split(".", 1)[0]
    monkeypatch.setenv("REPRO_CACHE_DIR", cache.root)
    assert cache_main(["explain", key]) == 0
    assert "integrity: verified" in capsys.readouterr().out


def test_explain_json(stored, capsys):
    job, cache, path = stored
    assert cache_main(["explain", path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verified"] is True
    assert payload["key"] == os.path.basename(path).split(".", 1)[0]
    inputs = payload["key_inputs"]
    assert inputs["design"] == design_source_hash()
    assert inputs["test"] == "t01_sanity_write_read"
    assert inputs["seed"] == 1
    assert inputs["view"] == "rtl"
    assert inputs["bugs"] == []
    assert inputs["with_arbitration_checker"] is True
    assert "report" in payload["artifacts"]


def test_explain_pre_upgrade_entry(stored, capsys, tmp_path):
    """An entry stored before key components were recorded still
    explains — with an honest "not recorded" note, not a crash."""
    job, cache, path = stored
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    del entry["key_inputs"]
    entry["digest"] = _entry_digest(
        {name: value for name, value in entry.items()
         if name != "digest"})
    old = tmp_path / os.path.basename(path)
    with open(old, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, sort_keys=True)
    assert cache_main(["explain", str(old)]) == 0
    out = capsys.readouterr().out
    assert "integrity: verified" in out
    assert "key components: not recorded" in out


def test_explain_corrupt_entry_exits_1(stored, capsys, tmp_path):
    job, cache, path = stored
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    blob = entry["artifacts"]["report"]
    entry["artifacts"]["report"] = \
        ("A" if blob[0] != "A" else "B") + blob[1:]
    bad = tmp_path / os.path.basename(path)
    with open(bad, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, sort_keys=True)
    assert cache_main(["explain", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "integrity: FAILED" in out
    # The surviving fields still print, so the damage is diagnosable.
    assert "test: t01_sanity_write_read" in out


def test_explain_missing_entry_exits_2(capsys):
    assert cache_main(["explain", "/no/such/entry.json"]) == USAGE_EXIT
    assert "no such entry" in capsys.readouterr().err


def test_explain_key_without_root_exits_2(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert cache_main(["explain", "a" * 64]) == USAGE_EXIT
    assert "needs a store root" in capsys.readouterr().err


def test_explain_unknown_key_under_root_exits_2(capsys, tmp_path):
    assert cache_main(
        ["explain", "a" * 64, "--root", str(tmp_path)]) == USAGE_EXIT
    assert "no such entry" in capsys.readouterr().err
