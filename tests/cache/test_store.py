"""Tests for the content-addressed, integrity-verified result store.

The store's contract has three legs, each pinned here:

* **Addressing** — the key is a pure function of what determines a run
  (design sources, config, test, seed, view, BCA bug set, checker
  flags) and of nothing else (kernel engine, artifact paths, attempt).
* **Integrity** — an entry that fails verification (torn, corrupt,
  poisoned, mis-addressed) is never served: it is quarantined with a
  structured diagnostic and the run re-executes.
* **Atomicity** — concurrent writers racing on one key leave a single
  valid entry (last-wins); readers never observe a torn one.

The end-to-end law — a warm cache means a second identical batch
executes **zero** simulation jobs — is proven by re-running under a
crash-everything chaos spec: any run that actually executed would
crash, so a passing byte-identical batch is a zero-execution batch.
"""

import dataclasses
import json
import multiprocessing
import os

import pytest

from repro.cache import (
    CACHE_SCHEMA,
    DIAGNOSTIC_SCHEMA,
    ResultCache,
    cache_key,
    design_source_hash,
)
from repro.cache.store import _entry_digest
from repro.regression import RegressionRunner
from repro.regression.chaos import CHAOS_ENV
from repro.regression.parallel import RunJob, execute_run_job
from repro.regression.resilience import run_artifact_paths
from repro.stbus import NodeConfig, ProtocolType

DESIGN = "d" * 64  # fixed design hash: key tests must not rehash sources


def _config(name="cache_cfg"):
    return NodeConfig(n_initiators=2, n_targets=2,
                      protocol_type=ProtocolType.T3, name=name)


def _job(workdir=None, **overrides):
    fields = dict(
        config=_config(), test_name="t01_sanity_write_read", seed=1,
        view="rtl", vcd_path=None, report_stem=None, bugs=frozenset(),
        with_arbitration_checker=True,
    )
    if workdir is not None:
        os.makedirs(str(workdir), exist_ok=True)
        stem = os.path.join(str(workdir), "entry__rtl")
        fields["vcd_path"] = stem + ".vcd"
        fields["report_stem"] = stem
    fields.update(overrides)
    return RunJob(**fields)


def _executed_job(workdir):
    """A run job plus its real result and artifact files."""
    job = _job(workdir)
    result = execute_run_job(job)
    return job, result


# -- key derivation -----------------------------------------------------


def test_key_is_stable_and_coordinate_sensitive():
    base = cache_key(_job(), design=DESIGN)
    assert base == cache_key(_job(), design=DESIGN)
    assert len(base) == 64
    assert cache_key(_job(seed=2), design=DESIGN) != base
    assert cache_key(_job(view="bca"), design=DESIGN) != base
    assert cache_key(
        _job(test_name="t02_random_uniform"), design=DESIGN) != base
    assert cache_key(
        _job(config=_config(name="other")), design=DESIGN) != base
    assert cache_key(
        _job(with_arbitration_checker=False), design=DESIGN) != base
    assert cache_key(_job(), design="e" * 64) != base


def test_key_ignores_execution_details():
    """Attempt number, artifact paths, telemetry and the kernel engine
    describe *how* a run executes, not *what* it computes — none of
    them may shard the pool."""
    base = cache_key(_job(), design=DESIGN)
    assert cache_key(_job(attempt=3), design=DESIGN) == base
    assert cache_key(_job(kernel="compiled"), design=DESIGN) == base
    assert cache_key(_job(telemetry=True, time_processes=True,
                          submitted_at=1.0), design=DESIGN) == base
    assert cache_key(
        _job(vcd_path="/elsewhere/x.vcd", report_stem="/elsewhere/x"),
        design=DESIGN) == base


def test_key_ignores_bugs_on_rtl_only():
    """Only the BCA view executes with injected bugs, so RTL entries
    are shared across bug experiments while BCA entries are not."""
    bugs = frozenset({"lru-recency-stuck"})
    assert cache_key(_job(bugs=bugs), design=DESIGN) \
        == cache_key(_job(), design=DESIGN)
    assert cache_key(_job(view="bca", bugs=bugs), design=DESIGN) \
        != cache_key(_job(view="bca"), design=DESIGN)


def test_design_source_hash_memoized_and_root_sensitive():
    assert design_source_hash() == design_source_hash()
    assert design_source_hash(("kernel",)) != design_source_hash(("stbus",))


# -- store/load round trip ----------------------------------------------


def test_round_trip_materializes_artifacts_byte_identically(tmp_path):
    job, result = _executed_job(tmp_path / "first")
    artifacts = run_artifact_paths(job)
    originals = {role: open(path, "rb").read()
                 for role, path in artifacts.items()}
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.store(job, result, artifacts) is not None

    replay_dir = tmp_path / "second"
    os.makedirs(replay_dir)
    replay_job = _job(replay_dir)
    replayed = cache.load(replay_job, run_artifact_paths(replay_job))
    assert replayed is not None
    assert replayed.passed == result.passed
    assert replayed.cycles == result.cycles
    assert replayed.report.render() == result.report.render()
    for role, path in run_artifact_paths(replay_job).items():
        assert open(path, "rb").read() == originals[role]
    assert cache.stats.counters() == {
        "hits": 1, "misses": 0, "stores": 1,
        "verify_failures": 0, "quarantined": 0,
    }


def test_cached_payload_strips_execution_telemetry(tmp_path):
    job = _job(tmp_path, telemetry=True, time_processes=True,
               submitted_at=0.0)
    result = execute_run_job(job)
    assert result.telemetry is not None
    cache = ResultCache(str(tmp_path / "cache"))
    cache.store(job, result, run_artifact_paths(job))
    replayed = cache.load(job, run_artifact_paths(job))
    assert replayed.telemetry is None
    assert replayed.process_seconds == {}
    # The caller's result object was not mutated by the store.
    assert result.telemetry is not None


def test_miss_on_empty_store(tmp_path):
    cache = ResultCache(str(tmp_path), design=DESIGN)
    assert cache.load(_job(), {}) is None
    assert cache.stats.misses == 1
    assert cache.stats.verify_failures == 0


# -- integrity verification ---------------------------------------------


def _stored_entry(tmp_path):
    job, result = _executed_job(tmp_path / "work")
    cache = ResultCache(str(tmp_path / "cache"))
    path = cache.store(job, result, run_artifact_paths(job))
    assert path is not None
    return job, cache, path


def _assert_rejected(tmp_path, cache, job, reason):
    """A doctored entry must quarantine with ``reason`` — and then a
    fresh run must re-execute and repopulate the store."""
    replay = cache.load(job, run_artifact_paths(job))
    assert replay is None
    assert cache.stats.verify_failures == 1
    assert cache.stats.quarantined == 1
    assert not os.path.exists(cache.entry_path(cache.key_for(job)))
    quarantine = os.path.join(cache.root, "quarantine")
    entries = [name for name in os.listdir(quarantine)
               if not name.endswith(".diag.json")]
    assert len(entries) == 1
    with open(os.path.join(quarantine, entries[0] + ".diag.json")) as fh:
        diagnostic = json.load(fh)
    assert diagnostic["schema"] == DIAGNOSTIC_SCHEMA
    assert diagnostic["event"] == "cache.quarantined"
    assert diagnostic["reason"] == reason
    assert diagnostic["quarantine_path"]
    assert [e for e in cache.events
            if e.get("event") == "cache.quarantined"] == [diagnostic]


def test_flipped_payload_byte_is_digest_mismatch(tmp_path):
    job, cache, path = _stored_entry(tmp_path)
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    # Corrupt one artifact blob but keep the JSON well-formed: this is
    # the adversarial case where only the digest can catch the damage.
    blob = entry["artifacts"]["report"]
    entry["artifacts"]["report"] = ("A" if blob[0] != "A" else "B") + blob[1:]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, sort_keys=True)
    _assert_rejected(tmp_path, cache, job, "digest-mismatch")


def test_truncated_entry_is_torn(tmp_path):
    job, cache, path = _stored_entry(tmp_path)
    data = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    _assert_rejected(tmp_path, cache, job, "torn-entry")


def test_wrong_schema_is_rejected(tmp_path):
    job, cache, path = _stored_entry(tmp_path)
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    entry["schema"] = "repro.cache/entry/v999"
    body = {k: v for k, v in entry.items() if k != "digest"}
    entry["digest"] = _entry_digest(body)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, sort_keys=True)
    _assert_rejected(tmp_path, cache, job, "schema-mismatch")


def test_entry_under_wrong_address_is_key_mismatch(tmp_path):
    """A valid entry copied under another run's address (poisoning, or
    a filesystem-level mixup) must not be served for that run."""
    job, cache, path = _stored_entry(tmp_path)
    other = dataclasses.replace(job, seed=2)
    other_path = cache.entry_path(cache.key_for(other))
    os.makedirs(os.path.dirname(other_path), exist_ok=True)
    with open(path, "rb") as src, open(other_path, "wb") as dst:
        dst.write(src.read())
    replay = cache.load(other, run_artifact_paths(other))
    assert replay is None
    assert cache.stats.verify_failures == 1
    diagnostics = [e for e in cache.events
                   if e.get("event") == "cache.quarantined"]
    assert diagnostics and diagnostics[0]["reason"] == "key-mismatch"
    # The original, correctly addressed entry still verifies.
    assert cache.load(job, run_artifact_paths(job)) is not None


def test_entry_with_fewer_artifacts_is_plain_miss(tmp_path):
    """An entry stored by a batch that dumped fewer artifacts is not
    corruption — it simply cannot satisfy this request."""
    job = _job()  # no workdir: no artifacts stored
    result = execute_run_job(job)
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.store(job, result, run_artifact_paths(job)) is not None
    rich = _job(tmp_path / "work")
    assert cache.load(rich, run_artifact_paths(rich)) is None
    assert cache.stats.misses == 1
    assert cache.stats.verify_failures == 0


# -- concurrent writers -------------------------------------------------


def _store_worker(root, workdir, index, done):
    job = _job(workdir)
    result = execute_run_job(job)
    cache = ResultCache(root)
    path = cache.store(job, result, run_artifact_paths(job))
    done.put((index, path))


def test_concurrent_writers_leave_one_valid_entry(tmp_path):
    """N processes racing to publish the same key: last-wins, and the
    surviving entry verifies and replays."""
    ctx = multiprocessing.get_context()
    done = ctx.Queue()
    procs = []
    for index in range(3):
        workdir = tmp_path / f"w{index}"
        os.makedirs(workdir)
        proc = ctx.Process(
            target=_store_worker,
            args=(str(tmp_path / "cache"), workdir, index, done))
        proc.start()
        procs.append(proc)
    for proc in procs:
        proc.join(120)
        assert proc.exitcode == 0
    paths = {done.get(timeout=10)[1] for _ in procs}
    assert None not in paths and len(paths) == 1
    # No stale temp files; exactly one entry; it verifies on read.
    objects = []
    for dirpath, _, filenames in os.walk(tmp_path / "cache"):
        objects.extend(os.path.join(dirpath, name) for name in filenames)
    assert len(objects) == 1 and objects[0].endswith(".json")
    cache = ResultCache(str(tmp_path / "cache"))
    replay_dir = tmp_path / "replay"
    os.makedirs(replay_dir)
    job = _job(replay_dir)
    assert cache.load(job, run_artifact_paths(job)) is not None
    with open(objects[0], "r", encoding="utf-8") as handle:
        assert json.load(handle)["schema"] == CACHE_SCHEMA


# -- end-to-end: warm cache = zero executed simulations ------------------


def _batch(workdir, cache_dir, jobs=1, workers=0):
    runner = RegressionRunner(
        [_config()], tests=["t01_sanity_write_read"], seeds=[1],
        workdir=str(workdir), jobs=jobs, workers=workers,
        cache_dir=str(cache_dir),
    )
    return runner.run(), runner


def _snapshot(workdir):
    return {name: (workdir / name).read_bytes()
            for name in sorted(os.listdir(workdir))}


def test_second_identical_batch_executes_zero_sim_jobs(
        tmp_path, monkeypatch):
    report, runner = _batch(tmp_path / "cold", tmp_path / "cache")
    assert runner.cache.stats.stores == 2
    cold = _snapshot(tmp_path / "cold")
    # Any simulation that executes now crashes — so a passing, byte-
    # identical second batch is a zero-execution batch.
    monkeypatch.setenv(CHAOS_ENV, "crash:*:*:*:*")
    warm_report, warm_runner = _batch(tmp_path / "warm", tmp_path / "cache")
    assert warm_runner.cache.stats.counters() == {
        "hits": 2, "misses": 0, "stores": 0,
        "verify_failures": 0, "quarantined": 0,
    }
    assert warm_report.render() == report.render()
    assert _snapshot(tmp_path / "warm") == cold


def test_keys_stable_across_serial_and_pooled_engines(tmp_path):
    """A pool batch must address the exact entries a serial batch
    stored: all hits, zero stores, byte-identical artifacts."""
    report, _ = _batch(tmp_path / "serial", tmp_path / "cache")
    pooled_report, runner = _batch(
        tmp_path / "pooled", tmp_path / "cache", jobs=2)
    assert runner.cache.stats.hits == 2
    assert runner.cache.stats.stores == 0
    assert pooled_report.render() == report.render()
    assert _snapshot(tmp_path / "pooled") == _snapshot(tmp_path / "serial")
