"""STBus Analyzer tests: extraction, alignment rates, transaction diff."""

import os

import pytest

from repro.analyzer import (
    SIGNOFF_THRESHOLD,
    compare_vcds,
    diff_transactions,
    discover_ports,
    extract_all,
    extract_port,
    ExtractionError,
)
from repro.catg import run_test
from repro.regression.testcases import build_test
from repro.stbus import ArbitrationPolicy, NodeConfig, Opcode, ProtocolType
from repro.vcd import parse_vcd


@pytest.fixture(scope="module")
def vcd_pair(tmp_path_factory):
    """RTL and BCA dumps of the same seeded test."""
    workdir = tmp_path_factory.mktemp("vcds")
    cfg = NodeConfig(n_initiators=2, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU, name="alignme")
    paths = {}
    for view in ("rtl", "bca"):
        path = str(workdir / f"{view}.vcd")
        result = run_test(cfg, build_test("t02_random_uniform", cfg, 4),
                          view=view, vcd_path=path)
        assert result.passed
        paths[view] = path
    return cfg, paths


def test_discover_ports(vcd_pair):
    _, paths = vcd_pair
    vcd = parse_vcd(paths["rtl"])
    ports = discover_ports(vcd)
    assert "tb.init0" in ports
    assert "tb.init1" in ports
    assert "tb.targ0" in ports
    assert "tb.targ1" in ports


def test_extract_port_packets_match_monitoring(vcd_pair):
    cfg, paths = vcd_pair
    vcd = parse_vcd(paths["rtl"])
    traffic = extract_port(vcd, "tb.init0")
    assert traffic.requests, "no packets extracted"
    assert len(traffic.requests) == len(traffic.responses)
    for packet in traffic.requests:
        assert packet.cells[-1].eop == 1
        assert all(c.eop == 0 for c in packet.cells[:-1])
        Opcode.decode(packet.cells[0].opc)  # decodable
    assert "request packets" in traffic.summary()


def test_extract_missing_scope_rejected(vcd_pair):
    _, paths = vcd_pair
    vcd = parse_vcd(paths["rtl"])
    with pytest.raises(ExtractionError):
        extract_port(vcd, "tb.nonexistent")
    with pytest.raises(ExtractionError):
        extract_all(vcd, scopes=["tb.ghost"])


def test_clean_views_align_100_percent(vcd_pair):
    _, paths = vcd_pair
    report = compare_vcds(paths["rtl"], paths["bca"])
    assert report.signed_off
    assert report.min_rate == 1.0
    assert report.overall_rate == 1.0
    for port in report.ports.values():
        assert port.first_divergence is None
        assert not port.signal_mismatches
    assert "SIGNED OFF" in report.render()


def test_self_comparison_is_perfect(vcd_pair):
    _, paths = vcd_pair
    report = compare_vcds(paths["rtl"], paths["rtl"])
    assert report.min_rate == 1.0


def test_buggy_bca_drops_below_threshold(tmp_path):
    cfg = NodeConfig(n_initiators=3, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU, name="buggy")
    rtl_path = str(tmp_path / "rtl.vcd")
    bca_path = str(tmp_path / "bca.vcd")
    run_test(cfg, build_test("t06_lru_fairness", cfg, 2), view="rtl",
             vcd_path=rtl_path)
    run_test(cfg, build_test("t06_lru_fairness", cfg, 2), view="bca",
             bugs={"lru-recency-stuck"}, vcd_path=bca_path)
    report = compare_vcds(rtl_path, bca_path)
    assert not report.signed_off
    worst = report.worst_port()
    assert worst.rate < SIGNOFF_THRESHOLD
    assert worst.first_divergence is not None
    assert "NOT signed off" in report.render()


def test_transaction_diff_identical_for_clean_views(vcd_pair):
    _, paths = vcd_pair
    diff = diff_transactions(paths["rtl"], paths["bca"])
    assert diff.functionally_equal
    assert "identical" in diff.render() or "timing-skew" in diff.render()


def test_transaction_diff_detects_content_divergence(tmp_path):
    cfg = NodeConfig(n_initiators=2, n_targets=2, name="lanes")
    rtl_path = str(tmp_path / "rtl.vcd")
    bca_path = str(tmp_path / "bca.vcd")
    run_test(cfg, build_test("t09_mixed_sizes", cfg, 3), view="rtl",
             vcd_path=rtl_path)
    run_test(cfg, build_test("t09_mixed_sizes", cfg, 3), view="bca",
             bugs={"subword-lane-misplacement"}, vcd_path=bca_path)
    diff = diff_transactions(rtl_path, bca_path)
    assert not diff.functionally_equal
    # The corruption is on the node's target side.
    assert any(
        not d.functionally_equal and "targ" in name
        for name, d in diff.ports.items()
    )


def test_compare_mismatched_portsets_rejected(vcd_pair, tmp_path):
    _, paths = vcd_pair
    cfg = NodeConfig(n_initiators=1, n_targets=1, name="tiny")
    other = str(tmp_path / "tiny.vcd")
    run_test(cfg, build_test("t01_sanity_write_read", cfg, 1),
             vcd_path=other)
    with pytest.raises(ExtractionError):
        compare_vcds(paths["rtl"], other)


def test_waveview_renders_divergence(tmp_path):
    from repro.analyzer import compare_vcds, render_divergence, render_port_wave

    cfg = NodeConfig(n_initiators=3, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU, name="wave")
    rtl_path = str(tmp_path / "rtl.vcd")
    bca_path = str(tmp_path / "bca.vcd")
    run_test(cfg, build_test("t06_lru_fairness", cfg, 2), view="rtl",
             vcd_path=rtl_path)
    run_test(cfg, build_test("t06_lru_fairness", cfg, 2), view="bca",
             bugs={"lru-recency-stuck"}, vcd_path=bca_path)
    report = compare_vcds(rtl_path, bca_path)
    worst = report.worst_port()
    wave = render_divergence(rtl_path, bca_path, worst)
    assert wave is not None
    assert worst.port in wave
    assert "*" in wave  # divergences marked
    assert ":rtl" in wave and ":bca" in wave
    # Aligned ports render as None.
    aligned = [p for p in report.ports.values()
               if p.first_divergence is None]
    if aligned:
        assert render_divergence(rtl_path, bca_path, aligned[0]) is None
    # Direct window rendering works too.
    text = render_port_wave(rtl_path, bca_path, worst.port,
                            worst.first_divergence, window=3)
    assert "signal" in text


def test_analyzer_cli_wave_flag(tmp_path, capsys):
    from repro.analyzer.cli import main as analyzer_main

    cfg = NodeConfig(n_initiators=3, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU, name="wavecli")
    rtl_path = str(tmp_path / "rtl.vcd")
    bca_path = str(tmp_path / "bca.vcd")
    run_test(cfg, build_test("t06_lru_fairness", cfg, 2), view="rtl",
             vcd_path=rtl_path)
    run_test(cfg, build_test("t06_lru_fairness", cfg, 2), view="bca",
             bugs={"lru-recency-stuck"}, vcd_path=bca_path)
    code = analyzer_main(["--wave", rtl_path, bca_path])
    out = capsys.readouterr().out
    assert code == 1
    assert "divergences marked" in out
