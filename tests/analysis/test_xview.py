"""Cross-view cone equivalence between the RTL and BCA environments."""

from repro.analysis.xview import cone_equivalence_findings
from repro.kernel import Module, Simulator
from repro.lint.diagnostics import Severity
from repro.lint.graph import DesignGraph


def _view(wire_b_into_out: bool, declare: bool = True):
    """A toy 'testbench': two port inputs, one port output, a DUT."""
    sim = Simulator()
    tb = Module(sim, "tb")
    a = tb.signal("a")
    b = tb.signal("b")
    out = tb.signal("out")
    dut = Module(sim, "dut", parent=tb)
    mid = dut.signal("mid")

    if wire_b_into_out:
        tb.comb(lambda: mid.drive(int(a) ^ int(b)), [a, b], name="in")
    else:
        tb.comb(lambda: mid.drive(int(a)), [a], name="in")
    if declare:
        tb.clocked(lambda: out.drive(int(mid)), name="reg",
                   reads=[mid], writes=[out])
    else:
        tb.clocked(lambda: out.drive(int(mid)), name="reg")
    return DesignGraph.from_simulator(sim)


def test_equal_cones_produce_no_findings():
    findings = cone_equivalence_findings(
        "cfg", _view(True), _view(True)
    )
    assert findings == []


def test_diverging_cone_is_an_error_naming_the_signals():
    findings = cone_equivalence_findings(
        "cfg", _view(True), _view(False)
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "xview-cone"
    assert finding.severity is Severity.ERROR
    assert finding.signal == "tb.out"
    assert "tb.b" in finding.message
    assert "RTL view only" in finding.message


def test_incomplete_view_degrades_to_info_note():
    findings = cone_equivalence_findings(
        "cfg", _view(True), _view(True, declare=False)
    )
    assert len(findings) == 1
    assert findings[0].severity is Severity.INFO
    assert "BCA" in findings[0].message


def test_real_environments_have_matching_cones():
    from repro.analysis.runner import analyze_config
    from repro.stbus import NodeConfig

    report = analyze_config(NodeConfig(), unr=False)
    assert report.cross_view == []
    assert not report.has_errors
