"""Table-driven tests for the process-fingerprint normalizer.

The contract (the ISSUE's conservatism ladder): a comment-only edit, a
docstring edit, a reformat and a constant rename each leave the
fingerprint unchanged, while a real body edit, a read/write-set change
and a sensitivity change each produce a new one — per construct
(clean-liftable bodies on the IR rung, loopy bodies on the AST rung).
"""

import ast
import functools

import pytest

from repro.analysis.impact import (
    MODE_OPAQUE,
    MODE_RAW_SOURCE,
    MODE_SEMANTIC_AST,
    MODE_SEMANTIC_IR,
    process_fingerprint,
)
from repro.kernel import Module, Simulator


def _fingerprint(builder):
    """Elaborate the one-process design ``builder`` makes and
    fingerprint its process."""
    sim = Simulator()
    builder(sim)
    sim.elaborate()
    infos = sim.comb_processes + sim.clocked_processes
    assert len(infos) == 1
    return process_fingerprint(infos[0])


# -- builders: each pair differs only in the way its name says --------------
#
# Every builder registers exactly one process named "t.p" over the same
# signals, so any fingerprint difference comes from the body/interface
# delta under test.

def ir_base(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)
    MASK = 7

    def logic():
        out.drive(a.value & MASK)

    top.comb(logic, [a], name="p")


def ir_comment(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)
    MASK = 7

    def logic():
        # a comment the normalizer must not see
        out.drive(a.value & MASK)  # trailing note

    top.comb(logic, [a], name="p")


def ir_docstring(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)
    MASK = 7

    def logic():
        """Docstrings are semantically inert."""
        out.drive(a.value & MASK)

    top.comb(logic, [a], name="p")


def ir_reformat(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)
    MASK = 7

    def logic():
        out.drive(
            (a.value) & (MASK),
        )

    top.comb(logic, [a], name="p")


def ir_const_rename(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)
    LOW_BITS = 7  # same value as MASK, different name

    def logic():
        out.drive(a.value & LOW_BITS)

    top.comb(logic, [a], name="p")


def ir_body_edit(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)
    MASK = 7

    def logic():
        out.drive(a.value | MASK)  # & became |

    top.comb(logic, [a], name="p")


def ir_const_value_edit(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)
    MASK = 3  # different value under the same name

    def logic():
        out.drive(a.value & MASK)

    top.comb(logic, [a], name="p")


def ast_base(sim):
    """A loop keeps the lifter partial, exercising the AST rung."""
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)

    def logic():
        acc = 0
        for shift in (0, 1):
            acc |= (a.value >> shift) & 1
        out.drive(acc)

    top.comb(logic, [a], name="p")


def ast_comment(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)

    def logic():
        # reduction OR over two taps
        acc = 0
        for shift in (0, 1):
            acc |= (a.value >> shift) & 1  # tap
        out.drive(acc)

    top.comb(logic, [a], name="p")


def ast_docstring(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)

    def logic():
        """Reduce two taps of ``a`` into one bit."""
        acc = 0
        for shift in (0, 1):
            acc |= (a.value >> shift) & 1
        out.drive(acc)

    top.comb(logic, [a], name="p")


def ast_reformat(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)

    def logic():
        acc = 0
        for shift in (0, 1):
            acc |= (
                (a.value >> shift)
                & 1
            )
        out.drive(acc)

    top.comb(logic, [a], name="p")


def ast_body_edit(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)

    def logic():
        acc = 0
        for shift in (0, 2):  # different tap
            acc |= (a.value >> shift) & 1
        out.drive(acc)

    top.comb(logic, [a], name="p")


def sens_base(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    b = top.signal("b", width=4)
    out = top.signal("out", width=4)

    def logic():
        out.drive(a.value)

    top.comb(logic, [a], name="p")
    del b


def sens_extra(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    b = top.signal("b", width=4)
    out = top.signal("out", width=4)

    def logic():
        out.drive(a.value)

    top.comb(logic, [a, b], name="p")  # same body, wider sensitivity


def clocked_base(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    b = top.signal("b", width=4)
    q = top.signal("q", width=4)

    def tick():
        q.drive(a.value)

    top.clocked(tick, reads=[a], writes=[q], name="p")
    del b


def clocked_read_set(sim):
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    b = top.signal("b", width=4)
    q = top.signal("q", width=4)

    def tick():
        q.drive(a.value)

    # Same body, wider declared read set.
    top.clocked(tick, reads=[a, b], writes=[q], name="p")


CASES = [
    ("ir/comment-only", ir_base, ir_comment, True),
    ("ir/docstring", ir_base, ir_docstring, True),
    ("ir/reformat", ir_base, ir_reformat, True),
    ("ir/constant-rename", ir_base, ir_const_rename, True),
    ("ir/body-edit", ir_base, ir_body_edit, False),
    ("ir/constant-value-edit", ir_base, ir_const_value_edit, False),
    ("ast/comment-only", ast_base, ast_comment, True),
    ("ast/docstring", ast_base, ast_docstring, True),
    ("ast/reformat", ast_base, ast_reformat, True),
    ("ast/body-edit", ast_base, ast_body_edit, False),
    ("comb/sensitivity-change", sens_base, sens_extra, False),
    ("clocked/read-set-change", clocked_base, clocked_read_set, False),
]


@pytest.mark.parametrize(
    "label,build_a,build_b,expect_same",
    CASES, ids=[case[0] for case in CASES])
def test_normalizer_table(label, build_a, build_b, expect_same):
    fp_a = _fingerprint(build_a)
    fp_b = _fingerprint(build_b)
    assert fp_a.digest is not None and fp_b.digest is not None
    if expect_same:
        assert fp_a.digest == fp_b.digest, label
        assert fp_a.mode == fp_b.mode
    else:
        assert fp_a.digest != fp_b.digest, label


def test_ir_rung_used_for_clean_lift():
    assert _fingerprint(ir_base).mode == MODE_SEMANTIC_IR


def test_ast_rung_used_for_partial_lift():
    assert _fingerprint(ast_base).mode == MODE_SEMANTIC_AST


def test_fingerprint_is_deterministic():
    assert _fingerprint(ir_base).digest == _fingerprint(ir_base).digest
    assert _fingerprint(ast_base).digest == _fingerprint(ast_base).digest


def test_opaque_process_has_no_digest():
    """A process whose source cannot be recovered (``functools.partial``
    has no code object for ``inspect.getsource``) lands on the opaque
    rung: no digest, a structured reason."""
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    out = top.signal("out", width=4)

    def logic(target, source):
        target.drive(source.value)

    top.comb(functools.partial(logic, out, a), [a], name="p")
    sim.elaborate()
    fp = process_fingerprint(sim.comb_processes[0])
    assert fp.mode == MODE_OPAQUE
    assert fp.digest is None
    assert fp.reason and "source unavailable" in fp.reason


class _StubInfo:
    """Duck-typed ProcessInfo for the raw-source rung: source text
    recovers but the AST does not."""

    name = "t.p"
    kind = "comb"
    sensitivity = ()
    declared_reads = None
    declared_writes = None
    declared_tie_offs = ()
    domain = None
    observed_reads = ()
    observed_writes = ()
    process = None

    def source(self):
        return "def p():\n    out.drive(1)\n"

    def source_ast(self):
        return None


def test_raw_source_rung_when_ast_unavailable():
    fp = process_fingerprint(_StubInfo())
    assert fp.mode == MODE_RAW_SOURCE
    assert fp.digest is not None
    assert fp.reason  # says why normalization degraded


def test_raw_source_rung_is_edit_sensitive():
    """On the raw rung *any* edit (even a comment) re-fingerprints —
    conservative by design."""
    stub_a = _StubInfo()
    stub_b = _StubInfo()
    stub_b.source = lambda: "def p():\n    out.drive(1)  # note\n"
    assert (process_fingerprint(stub_a).digest
            != process_fingerprint(stub_b).digest)
