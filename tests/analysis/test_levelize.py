"""Levelization of the combinational process graph (repro.analysis)."""

from repro.analysis.dataflow import levelize_comb
from repro.kernel import Simulator
from repro.lint.graph import DesignGraph


def _names(level):
    return [info.name for info in level]


def _levelize(sim):
    sim.elaborate()
    return levelize_comb(DesignGraph(sim))


def test_chain_levels_follow_dataflow_depth():
    sim = Simulator()
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    c = sim.signal("c", width=8)
    d = sim.signal("d", width=8)
    sim.add_comb(lambda: d.drive(c.value), [c], name="pd")
    sim.add_comb(lambda: b.drive(a.value), [a], name="pb")
    sim.add_comb(lambda: c.drive(b.value), [b], name="pc")
    sim.add_clocked(lambda: a.drive((a.value + 1) & 0xFF), name="tick")
    schedule = _levelize(sim)
    assert schedule.acyclic
    assert [_names(level) for level in schedule.levels] == [
        ["pb"], ["pc"], ["pd"],
    ]
    assert schedule.n_straight == 3
    assert schedule.n_levels == 3


def test_diamond_reconverges_at_deeper_level():
    # a feeds b and c in parallel; d reads both — longest path wins.
    sim = Simulator()
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    c = sim.signal("c", width=8)
    d = sim.signal("d", width=8)
    e = sim.signal("e", width=8)
    sim.add_comb(lambda: b.drive(a.value), [a], name="pb")
    sim.add_comb(lambda: c.drive(b.value), [b], name="pc")
    sim.add_comb(lambda: d.drive(a.value), [a], name="pd")
    sim.add_comb(lambda: e.drive((c.value + d.value) & 0xFF),
                 [c, d], name="pe")
    sim.add_clocked(lambda: a.drive((a.value + 1) & 0xFF), name="tick")
    schedule = _levelize(sim)
    assert schedule.acyclic
    levels = [_names(level) for level in schedule.levels]
    # pb and pd read only a (level 0); pc is level 1; pe must wait for
    # its deepest input, pc, so it lands at level 2.
    assert levels == [["pb", "pd"], ["pc"], ["pe"]]


def test_feedback_pair_becomes_island():
    sim = Simulator()
    x = sim.signal("x", width=8)
    y = sim.signal("y", width=8)
    stim = sim.signal("stim", width=8)
    # x and y feed each other (stable: both converge to stim's value).
    sim.add_comb(lambda: x.drive(max(stim.value, y.value)),
                 [stim, y], name="px")
    sim.add_comb(lambda: y.drive(x.value), [x], name="py")
    sim.add_clocked(lambda: stim.drive((stim.value + 1) & 0xFF),
                    name="tick")
    schedule = _levelize(sim)
    assert not schedule.acyclic
    assert schedule.n_straight == 0
    assert len(schedule.islands) == 1
    assert sorted(schedule.islands[0].names) == ["px", "py"]
    assert schedule.islands[0].level == 0


def test_self_loop_is_an_island_even_alone():
    sim = Simulator()
    x = sim.signal("x", width=8)
    stim = sim.signal("stim", width=8)
    # Reads and writes x: a one-process feedback loop.
    sim.add_comb(lambda: x.drive(max(x.value, stim.value)),
                 [x, stim], name="px")
    sim.add_clocked(lambda: stim.drive((stim.value + 1) & 0xFF),
                    name="tick")
    schedule = _levelize(sim)
    assert not schedule.acyclic
    assert [island.names for island in schedule.islands] == [("px",)]


def test_island_level_respects_upstream_straight_logic():
    # straight pa feeds the island; the island's consumer pd follows it.
    sim = Simulator()
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    x = sim.signal("x", width=8)
    y = sim.signal("y", width=8)
    d = sim.signal("d", width=8)
    sim.add_comb(lambda: b.drive(a.value), [a], name="pa")
    sim.add_comb(lambda: x.drive(max(b.value, y.value)), [b, y], name="px")
    sim.add_comb(lambda: y.drive(x.value), [x], name="py")
    sim.add_comb(lambda: d.drive(y.value), [y], name="pd")
    sim.add_clocked(lambda: a.drive((a.value + 1) & 0xFF), name="tick")
    schedule = _levelize(sim)
    assert [_names(level) for level in schedule.levels] == [["pa"], [], ["pd"]]
    assert len(schedule.islands) == 1
    assert schedule.islands[0].level == 1


def test_describe_is_json_friendly():
    sim = Simulator()
    a = sim.signal("a", width=8)
    b = sim.signal("b", width=8)
    sim.add_comb(lambda: b.drive(a.value), [a], name="pb")
    sim.add_clocked(lambda: a.drive(1), name="tick")
    schedule = _levelize(sim)
    info = schedule.describe()
    assert info == {"levels": [["pb"]], "islands": [], "acyclic": True}


def test_design_with_no_comb_processes():
    sim = Simulator()
    a = sim.signal("a", width=8)
    sim.add_clocked(lambda: a.drive(1), name="tick")
    schedule = _levelize(sim)
    assert schedule.acyclic
    assert schedule.levels == ()
    assert schedule.islands == ()
