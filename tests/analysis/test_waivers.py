"""The waiver dialect shared between repro.lint and repro.analysis."""

import pytest

from repro.analysis.waivers import (
    Waiver,
    WaiverError,
    apply_waivers,
    load_waiver_file,
    parse_waivers,
)


def test_lint_reexports_the_shared_machinery():
    # One dialect, one implementation: the lint names must BE the
    # analysis names, not copies.
    import repro.analysis.waivers as shared
    import repro.lint.diagnostics as lint

    assert lint.Waiver is shared.Waiver
    assert lint.WaiverError is shared.WaiverError
    assert lint.parse_waivers is shared.parse_waivers
    assert lint.apply_waivers is shared.apply_waivers


def test_schema_versions_agree():
    import repro.analysis as analysis
    import repro.lint.diagnostics as lint

    assert analysis.SCHEMA_VERSION == lint.SCHEMA_VERSION


def test_parse_waivers_with_reasons_and_comments():
    waivers = parse_waivers(
        "# header comment\n"
        "race-* tb.dut.* # known bridge artifact\n"
        "\n"
        "cdc-crossing *\n"
    )
    assert len(waivers) == 2
    assert waivers[0].rule == "race-*"
    assert waivers[0].reason == "known bridge artifact"
    assert waivers[1].location == "*"


def test_parse_rejects_single_token_line():
    with pytest.raises(WaiverError):
        parse_waivers("just-a-rule\n")


def test_one_file_waives_both_tools(tmp_path):
    from repro.lint.diagnostics import Finding, Severity

    path = tmp_path / "waivers.txt"
    path.write_text(
        "dead-net tb.* # lint finding\n"
        "race-delta-overwrite tb.* # analysis finding\n"
    )
    waivers = load_waiver_file(str(path))
    findings = [
        Finding(rule="dead-net", severity=Severity.WARNING,
                message="m", signal="tb.x"),
        Finding(rule="race-delta-overwrite", severity=Severity.ERROR,
                message="m", signal="tb.y"),
        Finding(rule="comb-loop", severity=Severity.ERROR,
                message="m", signal="tb.z"),
    ]
    apply_waivers(findings, waivers)
    assert [f.waived for f in findings] == [True, True, False]
