"""Dataflow graph construction and cone-of-influence queries."""

from repro.analysis.dataflow import ConeReport, DataflowGraph, interface_cones
from repro.kernel import Module, Simulator
from repro.lint.graph import DesignGraph


def _pipeline_design():
    """a --comb--> b --clocked--> c --comb--> d, plus unrelated e."""
    sim = Simulator()
    top = Module(sim, "t")
    a, b, c, d, e = (top.signal(n) for n in "abcde")

    top.comb(lambda: b.drive(int(a)), [a], name="ab")
    top.clocked(lambda: c.drive(int(b)), name="bc", reads=[b], writes=[c])
    top.comb(lambda: d.drive(int(c)), [c], name="cd")
    top.clocked(lambda: e.drive(1), name="e", reads=[], writes=[e])
    return sim, (a, b, c, d, e)


def test_fan_in_and_fan_out_cones():
    sim, (a, b, c, d, e) = _pipeline_design()
    flow = DataflowGraph(DesignGraph.from_simulator(sim))
    assert flow.complete
    assert flow.fan_in_cone(d) == {a, b, c}
    assert flow.fan_out_cone(a) == {b, c, d}
    assert flow.fan_in_cone(a) == set()
    assert flow.fan_out_cone(e) == set()


def test_opaque_clocked_process_marks_graph_incomplete():
    sim = Simulator()
    top = Module(sim, "t")
    x = top.signal("x")
    top.clocked(lambda: x.drive(1), name="mystery")  # nothing declared
    flow = DataflowGraph(DesignGraph.from_simulator(sim))
    assert not flow.complete
    assert [p.name for p in flow.opaque] == ["t.mystery"]


def test_tie_off_contributes_no_influence_edges():
    sim = Simulator()
    top = Module(sim, "t")
    src = top.signal("src")
    tied = top.signal("tied")
    top.clocked(lambda: tied.drive(0), name="tie",
                reads=[src], writes=[tied], tie_offs={tied: 0})
    flow = DataflowGraph(DesignGraph.from_simulator(sim))
    # The tie-off's value depends on nothing: src must not be in its cone.
    assert flow.fan_in_cone(tied) == set()
    assert flow.complete


def test_cone_report_shape():
    sim, (a, b, c, d, _) = _pipeline_design()
    flow = DataflowGraph(DesignGraph.from_simulator(sim))
    report = ConeReport.for_signal(flow, d)
    assert report.signal == "t.d"
    assert report.fan_in == ("t.a", "t.b", "t.c")
    assert report.to_dict()["complete"] is True


def test_interface_cones_drop_internal_transit():
    sim = Simulator()
    top = Module(sim, "tb")
    port_in = top.signal("port_in")
    dut = Module(sim, "dut", parent=top)
    internal = dut.signal("hidden")
    port_out = top.signal("port_out")

    top.comb(lambda: internal.drive(int(port_in)), [port_in], name="into")
    top.comb(lambda: port_out.drive(int(internal)), [internal], name="out")
    flow = DataflowGraph(DesignGraph.from_simulator(sim))
    cones = interface_cones(flow)
    # Influence flows *through* tb.dut.hidden but the cone reports only
    # interface signals.
    assert cones["tb.port_out"] == frozenset({"tb.port_in"})
    assert "tb.dut.hidden" not in cones
