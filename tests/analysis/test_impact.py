"""Tests for the change-impact machinery: environment residual hash,
manifest round-trip, differ classification, fan-out closure, index keys
and the ``python -m repro.analysis impact`` CLI."""

import ast
import copy
import json
import os

import pytest

from repro.analysis.impact import (
    DesignFingerprints,
    DesignManifest,
    ImpactIndex,
    ManifestError,
    ProcessFingerprint,
    build_manifest,
    diff_manifests,
    environment_digest,
)
from repro.analysis.impact_cli import main as impact_main
from repro.cache.store import design_source_hash
from repro.stbus import NodeConfig


# -- environment residual hash ---------------------------------------------


def _env_digest(tmp_path, source, process_names=()):
    """Write ``source`` as the single module of a temp design root and
    digest it, eliding the named defs as registered process bodies."""
    path = os.path.join(str(tmp_path), "mod.py")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(source)
    spans = set()
    if process_names:
        tree = ast.parse(source)
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) \
                    and node.name in process_names:
                spans.add(
                    (os.path.abspath(path), node.lineno, node.name))
    return environment_digest(spans, roots=(str(tmp_path),))


ENV_V1 = '''\
"""Module docstring."""
DEPTH = 4

def helper(x):
    return x + DEPTH

class Node:
    def _proc(self):
        self.q.drive(self.a.value)
'''


def test_env_digest_ignores_comments_and_docstrings(tmp_path):
    base = _env_digest(tmp_path, ENV_V1, ("_proc",))
    commented = ENV_V1.replace(
        "DEPTH = 4", "DEPTH = 4  # pipeline depth").replace(
        '"""Module docstring."""', '"""Rewritten docstring."""')
    edited = _env_digest(tmp_path, commented, ("_proc",))
    assert base.digest == edited.digest
    assert base.n_elided == 1


def test_env_digest_ignores_registered_process_bodies(tmp_path):
    base = _env_digest(tmp_path, ENV_V1, ("_proc",))
    body_edit = ENV_V1.replace(
        "self.q.drive(self.a.value)",
        "self.q.drive(self.a.value & 1)")
    edited = _env_digest(tmp_path, body_edit, ("_proc",))
    assert base.digest == edited.digest


def test_env_digest_catches_top_level_change(tmp_path):
    base = _env_digest(tmp_path, ENV_V1, ("_proc",))
    edited = _env_digest(
        tmp_path, ENV_V1.replace("DEPTH = 4", "DEPTH = 8"), ("_proc",))
    assert base.digest != edited.digest


def test_env_digest_catches_non_process_function_edit(tmp_path):
    base = _env_digest(tmp_path, ENV_V1, ("_proc",))
    edited = _env_digest(
        tmp_path,
        ENV_V1.replace("return x + DEPTH", "return x - DEPTH"),
        ("_proc",))
    assert base.digest != edited.digest


def test_env_digest_without_elision_sees_process_edits(tmp_path):
    """An unregistered (never-manifested) process body counts as
    environment code — edits to it invalidate, conservatively."""
    base = _env_digest(tmp_path, ENV_V1, ())
    edited = _env_digest(
        tmp_path,
        ENV_V1.replace("self.q.drive(self.a.value)",
                       "self.q.drive(0)"),
        ())
    assert base.n_elided == 0
    assert base.digest != edited.digest


def test_env_digest_hashes_unparsable_files_raw(tmp_path):
    broken = "def broken(:\n"
    base = _env_digest(tmp_path, broken)
    assert base.diagnostics and "hashed raw" in base.diagnostics[0]
    # On the raw fallback even a comment edit invalidates — sound.
    edited = _env_digest(tmp_path, broken + "# note\n")
    assert base.digest != edited.digest


# -- manifest round-trip and differ ----------------------------------------


@pytest.fixture(scope="module")
def stock_index():
    return ImpactIndex([NodeConfig(name="node")])


def test_manifest_round_trip(tmp_path, stock_index):
    manifest = stock_index.manifest()
    path = os.path.join(str(tmp_path), "manifest.json")
    manifest.write(path)
    loaded = DesignManifest.read(path)
    assert loaded.design_hash == manifest.design_hash
    assert loaded.environment.digest == manifest.environment.digest
    assert set(loaded.designs) == set(manifest.designs)
    report = diff_manifests(manifest, loaded)
    assert not report.affected
    assert len(report.unaffected) == 2


def test_manifest_schema_is_enforced(tmp_path, stock_index):
    path = os.path.join(str(tmp_path), "manifest.json")
    stock_index.manifest().write(path)
    data = json.load(open(path))
    data["schema"] = "repro.analysis/impact-manifest/v0"
    json.dump(data, open(path, "w"))
    with pytest.raises(ManifestError):
        DesignManifest.read(path)
    with pytest.raises(ManifestError):
        DesignManifest.read(os.path.join(str(tmp_path), "missing.json"))


def _mutated(manifest, label, process_suffix):
    """Deep-copied manifest with one process digest flipped."""
    other = copy.deepcopy(manifest)
    design = other.designs[label]
    for name in design.processes:
        if name.endswith(process_suffix):
            old = design.processes[name]
            design.processes[name] = ProcessFingerprint(
                name=old.name, kind=old.kind, mode=old.mode,
                digest="0" * 64, reads=old.reads, writes=old.writes)
            return other
    raise AssertionError(f"no process ending in {process_suffix}")


def test_differ_classifies_process_change_with_cone(stock_index):
    manifest = stock_index.manifest()
    edited = _mutated(manifest, "node::bca", "_on_clock")
    report = diff_manifests(manifest, edited, graphs=stock_index.graphs)
    assert [d.label for d in report.affected] == ["node::bca"]
    assert [d.label for d in report.unaffected] == ["node::rtl"]
    (impact,) = report.affected
    assert impact.reason == "1 semantically-changed process(es)"
    assert impact.changed_processes == ("tb.dut._on_clock",)
    # The clocked process writes reach downstream state: a non-empty
    # fan-out cone of concrete signal names.
    assert impact.affected_signals
    assert all(isinstance(s, str) for s in impact.affected_signals)
    assert 0 < report.rerun_fraction < 1


def test_differ_classifies_environment_change(stock_index):
    manifest = stock_index.manifest()
    edited = copy.deepcopy(manifest)
    object.__setattr__(edited.environment, "digest", "f" * 64)
    report = diff_manifests(manifest, edited)
    assert report.environment_changed
    assert len(report.affected) == 2 and not report.unaffected
    assert all("environment" in d.reason for d in report.affected)


def test_differ_classifies_config_change(stock_index):
    manifest = stock_index.manifest()
    edited = copy.deepcopy(manifest)
    edited.designs["node::rtl"].config_digest = "0" * 64
    report = diff_manifests(manifest, edited)
    assert [d.label for d in report.affected] == ["node::rtl"]
    assert "configuration" in report.affected[0].reason


def test_differ_classifies_added_and_removed(stock_index):
    manifest = stock_index.manifest()
    pruned = copy.deepcopy(manifest)
    del pruned.designs["node::bca"]
    report = diff_manifests(pruned, manifest)
    added = [d for d in report.affected if "added" in d.reason]
    assert [d.label for d in added] == ["node::bca"]
    report = diff_manifests(manifest, pruned)
    removed = [d for d in report.affected if "removed" in d.reason]
    assert [d.label for d in removed] == ["node::bca"]


def _opaque_design():
    design = DesignFingerprints(
        config_name="node", view="bca", config_digest="c" * 64)
    design.processes["tb.dut._mystery"] = ProcessFingerprint(
        name="tb.dut._mystery", kind="comb", mode="opaque",
        digest=None, reason="source unavailable")
    return design


def test_opaque_process_forces_whole_design_fallback():
    """Satellite (c): an unrecoverable process degrades its design to
    the monolithic hash, with a structured diagnostic naming it."""
    design = _opaque_design()
    whole = design_source_hash()
    reason = design.fallback_reason
    assert reason is not None
    assert "opaque-process" in reason and "tb.dut._mystery" in reason
    env = environment_digest(set(), roots=())
    assert design.design_key(env, whole) == whole


def test_differ_treats_fallback_as_affected(stock_index):
    manifest = stock_index.manifest()
    edited = copy.deepcopy(manifest)
    edited.designs["node::bca"] = _opaque_design()
    report = diff_manifests(manifest, edited)
    affected = {d.label: d for d in report.affected}
    assert "node::bca" in affected
    assert "conservative fallback" in affected["node::bca"].reason
    assert "node::rtl" in {d.label for d in report.unaffected}


def test_report_render_and_json(stock_index):
    manifest = stock_index.manifest()
    edited = _mutated(manifest, "node::bca", "_on_clock")
    report = diff_manifests(manifest, edited, graphs=stock_index.graphs)
    text = report.render()
    assert "1/2 design(s) affected" in text
    assert "tb.dut._on_clock" in text
    assert "fan-out cone" in text
    payload = report.to_dict()
    assert payload["schema_version"] == 1
    assert payload["n_affected"] == 1
    json.dumps(payload)  # JSON-serializable throughout


# -- the index -------------------------------------------------------------


def test_index_keys_are_per_view_and_stable(stock_index):
    rtl = stock_index.design_key("node", "rtl")
    bca = stock_index.design_key("node", "bca")
    assert rtl != bca
    assert rtl != design_source_hash()
    fresh = ImpactIndex([NodeConfig(name="node")])
    assert fresh.design_key("node", "rtl") == rtl
    assert fresh.design_key("node", "bca") == bca


def test_index_unknown_design_degrades_to_whole_hash(stock_index):
    assert (stock_index.design_key("never-built", "rtl")
            == design_source_hash())


def test_index_resolver_and_counters(stock_index):
    class Job:
        config = NodeConfig(name="node")
        view = "bca"

    resolve = stock_index.resolver()
    assert resolve(Job()) == stock_index.design_key("node", "bca")
    counters = stock_index.counters()
    assert counters["impact.designs"] == 2
    assert counters["impact.cone_keys"] == 2
    assert counters["impact.design_fallbacks"] == 0
    assert counters["impact.processes"] == sum(
        counters[f"impact.{mode}"]
        for mode in ("semantic_ir", "semantic_ast", "raw_source",
                     "opaque"))
    assert {e["event"] for e in stock_index.events} == {
        "impact.design-key"}
    assert all(e["mode"] == "cone" for e in stock_index.events)


def test_build_manifest_convenience():
    manifest = build_manifest([NodeConfig(name="node")], views=("rtl",))
    assert set(manifest.designs) == {"node::rtl"}
    assert manifest.design_hash == design_source_hash()


# -- the CLI ---------------------------------------------------------------


def test_cli_write_then_self_diff(tmp_path, capsys):
    path = os.path.join(str(tmp_path), "baseline.json")
    assert impact_main(["--stock", "--write", path]) == 0
    out = capsys.readouterr().out
    assert "wrote manifest" in out and "2 design(s)" in out
    assert impact_main(["--stock", "--baseline", path]) == 0
    out = capsys.readouterr().out
    assert "0/2 design(s) affected" in out
    assert "provably unaffected" in out


def test_cli_detects_change_and_exits_nonzero(tmp_path, capsys):
    path = os.path.join(str(tmp_path), "baseline.json")
    assert impact_main(["--stock", "--write", path]) == 0
    capsys.readouterr()
    data = json.load(open(path))
    for fp in data["designs"]["node::bca"]["processes"].values():
        fp["digest"] = "0" * 64
        break
    json.dump(data, open(path, "w"))
    assert impact_main(["--stock", "--baseline", path]) == 1
    assert "AFFECTED node::bca" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    path = os.path.join(str(tmp_path), "baseline.json")
    assert impact_main(
        ["--stock", "--write", path, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == 1
    assert payload["n_designs"] == 2
    assert impact_main(
        ["--stock", "--baseline", path, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["n_affected"] == 0
    assert payload["counters"]["impact.designs"] == 2


def test_cli_usage_errors(tmp_path, capsys):
    # Nothing to do
    assert impact_main(["--stock"]) == 2
    assert "nothing to do" in capsys.readouterr().err
    # Conflicting sources
    assert impact_main(
        ["--stock", "--matrix", "--write", "x.json"]) == 2
    capsys.readouterr()
    # Unreadable/wrong-schema baseline
    path = os.path.join(str(tmp_path), "bad.json")
    json.dump({"schema": "nope"}, open(path, "w"))
    assert impact_main(["--stock", "--baseline", path]) == 2
    assert "schema" in capsys.readouterr().err


def test_cli_dispatch_through_analysis_main(tmp_path, capsys):
    from repro.analysis.cli import main as analysis_main

    path = os.path.join(str(tmp_path), "baseline.json")
    assert analysis_main(["impact", "--stock", "--write", path]) == 0
    assert os.path.exists(path)
