"""``--symbolic`` CLI behavior and the golden symbolic stock report.

The golden file pins the complete ``--stock --symbolic`` JSON output:
per-port equivalence verdicts, lift statistics, and the UNR upgrade
deltas (probe reason → exact interval proof, with the structured
witness vectors).  Any engine change that shifts a verdict, a witness or
the serialization fails here first.
"""

import json
import os

import pytest

from repro.analysis.cli import main

GOLDEN = os.path.join(
    os.path.dirname(__file__), os.pardir, "golden",
    "symbolic_stock_node.json",
)


def _stock_symbolic(capsys, *extra):
    assert main(["--stock", "--symbolic", "--format", "json", *extra]) == 0
    return json.loads(capsys.readouterr().out)


def test_stock_symbolic_json_matches_golden(capsys):
    got = _stock_symbolic(capsys)
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        expected = json.load(handle)
    assert got == expected


def test_golden_pins_verdicts_and_deltas():
    """Belt and braces: assert the golden's semantic content directly so
    a regenerated-but-wrong golden cannot silently pass the diff."""
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    sym = data["configs"][0]["symbolic"]
    assert sym["equivalence_clean"] is True
    assert [(p["port"], p["verdict"]) for p in sym["ports"]] == [
        ("init0", "EQUIVALENT"), ("init1", "EQUIVALENT"),
        ("targ0", "EQUIVALENT"), ("targ1", "EQUIVALENT"),
    ]
    upgrade = sym["unr_upgrade"]
    assert upgrade["unknown_after"] == 0
    assert {d["bin"] for d in upgrade["deltas"]} == {
        "decode:error", "response:error",
    }
    for delta in upgrade["deltas"]:
        assert "interval" in delta["new_reason"]
        assert delta["witness"]["address"] == "0x2000"
    # The upgraded verdicts land on the UNR bins themselves too.
    unr_bins = {f"{v['group']}:{v['bin']}": v
                for v in data["configs"][0]["unr"]["verdicts"]}
    assert unr_bins["decode:error"]["witness"]["opcode"] == "LOAD4"


def test_symbolic_text_mode_prints_summary(capsys):
    assert main(["--stock", "--symbolic"]) == 0
    out = capsys.readouterr().out
    assert "symbolic analysis" in out
    assert "0 mismatched port(s)" in out
    assert "0 UNKNOWN UNR verdict(s)" in out


def test_without_symbolic_flag_output_has_no_symbolic_key(capsys):
    assert main(["--stock", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    config = data["configs"][0]
    assert "symbolic" not in config
    for verdict in config["unr"]["verdicts"]:
        assert "witness" not in verdict


def test_inject_bug_fails_the_gate(capsys):
    # subword-lane-misplacement is observable on the stock w32 node.
    assert main(["--stock", "--symbolic",
                 "--inject-bug", "subword-lane-misplacement"]) == 1
    out = capsys.readouterr().out
    assert "MISMATCH" in out
    assert "xview-function" in out


def test_inject_bug_requires_symbolic_run_to_catch(capsys):
    """Without --symbolic the same bug sails through the static pass —
    the functional proof is what catches it."""
    assert main(["--stock", "--inject-bug",
                 "subword-lane-misplacement"]) == 0


def test_unknown_bug_name_is_a_usage_error(capsys):
    assert main(["--stock", "--symbolic",
                 "--inject-bug", "no-such-bug"]) == 2
    err = capsys.readouterr().err
    assert "no-such-bug" in err


def test_symbolic_budget_flag_reaches_the_engine(capsys):
    assert main(["--stock", "--symbolic", "--symbolic-budget", "2",
                 "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    sym = data["configs"][0]["symbolic"]
    assert sym["budget"] == 2
    rules = {f["rule"] for f in sym["findings"]}
    assert "symbolic-domain-too-large" in rules
    assert sym["equivalence_clean"] is True  # lockstep still proves


def test_symbolic_findings_respect_waivers(capsys):
    """The shared waiver dialect applies to symbolic findings too."""
    assert main(["--stock", "--symbolic", "--symbolic-budget", "2",
                 "--waive", "symbolic-domain-too-large:*",
                 "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    sym = data["configs"][0]["symbolic"]
    skips = [f for f in sym["findings"]
             if f["rule"] == "symbolic-domain-too-large"]
    assert skips and all(f["waived"] for f in skips)
