"""Race, tie-off-conflict and CDC rule tests."""

from repro.analysis.races import AnalysisContext, resolve_analysis_rules
from repro.analysis.runner import analyze_simulator
from repro.kernel import Module, Simulator
from repro.lint.diagnostics import Severity
from repro.lint.graph import DesignGraph

import pytest


def _findings(sim, rule):
    report = analyze_simulator(sim, design="t")
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# race-delta-overwrite
# ---------------------------------------------------------------------------

def test_clocked_then_comb_overwrite_detected():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    shared = top.signal("shared")
    sink = top.signal("sink")

    # The clocked write commits at the posedge; the comb write lands in a
    # later delta of the same cycle — invisible to MultipleDriverError.
    top.clocked(lambda: shared.drive(1), name="reg",
                reads=[], writes=[shared])
    top.comb(lambda: shared.drive(int(sel)), [sel], name="override")
    top.clocked(lambda: sink.drive(int(shared)), name="reader",
                reads=[shared], writes=[sink])
    findings = _findings(sim, "race-delta-overwrite")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.severity is Severity.ERROR
    assert finding.signal == "t.shared"
    assert "t.reg" in finding.message
    assert "t.override" in finding.message
    assert "t.reader" in finding.message  # the clocked sampler is named


def test_single_owner_nets_are_race_free():
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a")
    b = top.signal("b")
    top.clocked(lambda: a.drive(1), name="reg", reads=[], writes=[a])
    top.comb(lambda: b.drive(int(a)), [a], name="mirror")
    assert not _findings(sim, "race-delta-overwrite")


# ---------------------------------------------------------------------------
# tie-off-conflict
# ---------------------------------------------------------------------------

def test_conflicting_tie_offs_reported():
    sim = Simulator()
    top = Module(sim, "t")
    out = top.signal("out")
    top.clocked(lambda: out.drive(0), name="zero",
                reads=[], writes=[out], tie_offs={out: 0})
    top.clocked(lambda: out.drive(1), name="one",
                reads=[], writes=[out], tie_offs={out: 1})
    findings = _findings(sim, "tie-off-conflict")
    assert len(findings) == 1
    assert "t.zero->0" in findings[0].message
    assert "t.one->1" in findings[0].message


def test_agreeing_tie_offs_are_fine():
    sim = Simulator()
    top = Module(sim, "t")
    out = top.signal("out")
    top.clocked(lambda: out.drive(0), name="zero",
                reads=[], writes=[out], tie_offs={out: 0})
    assert not _findings(sim, "tie-off-conflict")


# ---------------------------------------------------------------------------
# cdc-crossing
# ---------------------------------------------------------------------------

def _two_domain_design(comb_hop: bool):
    sim = Simulator()
    top = Module(sim, "t")
    src = top.signal("src")
    hop = top.signal("hop")
    dst = top.signal("dst")

    top.clocked(lambda: src.drive(1), name="writer",
                reads=[], writes=[src], domain="fast")
    if comb_hop:
        top.comb(lambda: hop.drive(int(src)), [src], name="wire")
        read_from = hop
    else:
        read_from = src
    top.clocked(lambda: dst.drive(int(read_from)), name="sampler",
                reads=[read_from], writes=[dst], domain="slow")
    return sim


def test_direct_crossing_detected():
    findings = _findings(_two_domain_design(comb_hop=False), "cdc-crossing")
    assert len(findings) == 1
    assert "'fast'" in findings[0].message
    assert "'slow'" in findings[0].message


def test_crossing_through_comb_logic_detected():
    findings = _findings(_two_domain_design(comb_hop=True), "cdc-crossing")
    assert len(findings) == 1
    assert "t.hop" in findings[0].message  # the comb transit is named


def test_single_domain_is_vacuously_quiet():
    sim = Simulator()
    top = Module(sim, "t")
    a, b = top.signal("a"), top.signal("b")
    top.clocked(lambda: a.drive(1), name="w", reads=[], writes=[a])
    top.clocked(lambda: b.drive(int(a)), name="r", reads=[a], writes=[b])
    assert not _findings(sim, "cdc-crossing")


def test_assign_clock_domain_by_prefix():
    sim = Simulator()
    top = Module(sim, "t")
    fast = Module(sim, "fastside", parent=top)
    a = top.signal("a")
    b = top.signal("b")
    fast.clocked(lambda: a.drive(1), name="w", reads=[], writes=[a])
    top.clocked(lambda: b.drive(int(a)), name="r", reads=[a], writes=[b])
    sim.assign_clock_domain("t.fastside.", "io_clk")
    domains = DesignGraph.from_simulator(sim).clock_domains()
    assert set(domains) == {"io_clk", "clk"}
    findings = _findings(sim, "cdc-crossing")
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# rule resolution
# ---------------------------------------------------------------------------

def test_resolve_analysis_rules():
    rules = resolve_analysis_rules(["cdc-crossing"])
    assert [r.id for r in rules] == ["cdc-crossing"]
    assert resolve_analysis_rules(None) is None
    with pytest.raises(ValueError):
        resolve_analysis_rules(["no-such-rule"])


def test_context_builder_counts():
    sim = Simulator()
    top = Module(sim, "t")
    tied = top.signal("tied")
    top.clocked(lambda: tied.drive(0), name="tie",
                reads=[], writes=[tied], tie_offs={tied: 0})
    ctx = AnalysisContext.from_graph(DesignGraph.from_simulator(sim))
    assert len(ctx.constants) == 1
    assert ctx.dataflow.complete
