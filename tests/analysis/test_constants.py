"""Constant derivation: tie-offs, undriven nets, soundness guards."""

from repro.analysis.constants import ValueRange, derive_constants
from repro.kernel import Module, Simulator
from repro.lint.graph import DesignGraph


def _facts(sim):
    return derive_constants(DesignGraph.from_simulator(sim))


def test_tie_off_proves_constant():
    sim = Simulator()
    top = Module(sim, "t")
    tied = top.signal("tied")
    top.clocked(lambda: tied.drive(1), name="tie",
                writes=[tied], reads=[], tie_offs={tied: 1})
    facts = _facts(sim)
    assert facts.value_of(tied) == 1
    assert "t.tie" in facts.reason_of(tied)
    assert facts.range_of(tied) == ValueRange.constant(1)


def test_undriven_net_holds_init_value():
    sim = Simulator()
    top = Module(sim, "t")
    floating = top.signal("floating", init=0)
    sink = top.signal("sink")
    top.clocked(lambda: sink.drive(int(floating)), name="clk",
                reads=[floating], writes=[sink])
    facts = _facts(sim)
    assert facts.value_of(floating) == 0
    assert "undriven" in facts.reason_of(floating)
    assert facts.value_of(sink) is None  # computed, not constant


def test_no_facts_when_a_clocked_process_is_undeclared():
    sim = Simulator()
    top = Module(sim, "t")
    tied = top.signal("tied")
    top.clocked(lambda: tied.drive(1), name="tie",
                writes=[tied], reads=[], tie_offs={tied: 1})
    top.clocked(lambda: None, name="mystery")  # could write anything
    assert len(_facts(sim)) == 0


def test_mixed_writer_defeats_the_tie_off_proof():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    out = top.signal("out")
    top.clocked(lambda: out.drive(0), name="tie",
                reads=[], writes=[out], tie_offs={out: 0})
    top.comb(lambda: out.drive(int(sel)), [sel], name="mux")
    facts = _facts(sim)
    assert out not in facts  # the comb writer computes a value


def test_conflicting_tie_offs_prove_nothing():
    sim = Simulator()
    top = Module(sim, "t")
    out = top.signal("out")
    top.clocked(lambda: out.drive(0), name="zero",
                reads=[], writes=[out], tie_offs={out: 0})
    top.clocked(lambda: out.drive(1), name="one",
                reads=[], writes=[out], tie_offs={out: 1})
    assert out not in _facts(sim)


def test_value_range_helpers():
    sim = Simulator()
    top = Module(sim, "t")
    wide = top.signal("wide", width=4)
    assert ValueRange.full(wide) == ValueRange(0, 15)
    assert 7 in ValueRange.full(wide)
    assert not ValueRange.constant(3).__contains__(4)
    assert str(ValueRange.constant(3)) == "[3]"
    assert str(ValueRange(0, 15)) == "[0..15]"
