"""Symbolic strengthening of the tie-off-conflict rule.

The declaration-only rule can only catch two *declared* tie-offs that
disagree.  The previously-missed case: one process declares the net tied
to a constant while a combinational writer provably drives a different
constant — no second declaration exists, so the old rule stayed silent.
The lifted output function closes that hole.
"""

from repro.analysis.runner import analyze_simulator
from repro.kernel import Module, Simulator
from repro.lint.diagnostics import Severity


def _findings(sim, rule):
    report = analyze_simulator(sim, design="t")
    return [f for f in report.findings if f.rule == rule]


def test_declared_tie_off_contradicted_by_proven_comb_constant():
    sim = Simulator()
    top = Module(sim, "t")
    clk = top.signal("clk")
    out = top.signal("out")
    # The clocked process declares the net tied to 0; the comb process
    # provably always drives 1.  No declaration pair conflicts, so the
    # pre-symbolic rule missed this outright.
    top.clocked(lambda: out.drive(0), name="zero",
                reads=[clk], writes=[out], tie_offs={out: 0})
    top.comb(lambda: out.drive(1), [clk], name="one")
    findings = _findings(sim, "tie-off-conflict")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.severity is Severity.ERROR
    assert finding.signal == "t.out"
    assert "declared tied to 0" in finding.message
    assert "t.one" in finding.message
    assert "drives 1" in finding.message


def test_agreeing_proven_constant_is_fine():
    sim = Simulator()
    top = Module(sim, "t")
    clk = top.signal("clk")
    out = top.signal("out")
    top.clocked(lambda: out.drive(1), name="one",
                reads=[clk], writes=[out], tie_offs={out: 1})
    top.comb(lambda: out.drive(1), [clk], name="also_one")
    assert not _findings(sim, "tie-off-conflict")


def test_input_dependent_comb_drive_is_not_accused():
    """A comb drive whose value depends on an input is not a constant;
    the rule must not guess from one observed evaluation."""
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    out = top.signal("out")
    top.clocked(lambda: out.drive(0), name="zero",
                reads=[sel], writes=[out], tie_offs={out: 0})
    top.comb(lambda: out.drive(int(sel)), [sel], name="follow")
    assert not _findings(sim, "tie-off-conflict")


def test_unliftable_comb_writer_stays_silent():
    """Honest degradation: an OPAQUE comb writer proves nothing, so no
    conflict may be reported from it."""
    state = {"v": 1}
    sim = Simulator()
    top = Module(sim, "t")
    clk = top.signal("clk")
    out = top.signal("out")
    top.clocked(lambda: out.drive(0), name="zero",
                reads=[clk], writes=[out], tie_offs={out: 0})
    # Dict subscripts are outside the lifted subset -> OPAQUE.
    top.comb(lambda: out.drive(state["v"]), [clk], name="mystery")
    assert not _findings(sim, "tie-off-conflict")
