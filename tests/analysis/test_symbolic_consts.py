"""Symbolic constant facts: closed comb output functions as constants."""

from repro.analysis.symbolic.consts import (
    comb_constant_drive,
    symbolic_comb_constants,
)
from repro.kernel import Module, Simulator


def _sim():
    sim = Simulator()
    top = Module(sim, "t")
    clk = top.signal("clk")
    return sim, top, clk


def test_closed_comb_drive_is_a_constant_fact():
    sim, top, clk = _sim()
    out = top.signal("out", width=4)
    top.comb(lambda: out.drive(2 + 3), [clk], name="tie")
    sim.elaborate()
    facts = symbolic_comb_constants(sim)
    assert "t.out" in facts
    value, reason = facts["t.out"]
    assert value == 5
    assert "symbolic" in reason
    assert comb_constant_drive(sim, "t.out") == 5


def test_input_dependent_drive_is_not_a_constant():
    sim, top, clk = _sim()
    out = top.signal("out")
    top.comb(lambda: out.drive(clk.value), [clk], name="follow")
    sim.elaborate()
    assert "t.out" not in symbolic_comb_constants(sim)
    assert comb_constant_drive(sim, "t.out") is None


def test_clocked_co_writer_disqualifies_the_fact():
    """Sole ownership is required: a clocked writer can override the
    comb constant in a later cycle, so no fact may be claimed."""
    sim, top, clk = _sim()
    out = top.signal("out")
    top.comb(lambda: out.drive(1), [clk], name="tie")
    top.clocked(lambda: out.drive(0), name="override",
                reads=[clk], writes=[out])
    sim.elaborate()
    assert "t.out" not in symbolic_comb_constants(sim)


def test_opaque_writer_disqualifies_the_fact():
    state = {"v": 1}
    sim, top, clk = _sim()
    out = top.signal("out")
    top.comb(lambda: out.drive(state["v"]), [clk], name="mystery")
    sim.elaborate()
    assert "t.out" not in symbolic_comb_constants(sim)
