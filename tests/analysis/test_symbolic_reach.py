"""Exact interval-coverage UNR engine: zero UNKNOWN, concrete witnesses.

The probe-based engine deliberately degrades to UNKNOWN when every
probed address decodes (its probes cannot speak for the full 2^32
space).  The exact engine replaces the probe argument with an interval
union over the resolved address map: either the union leaves a gap (a
concrete witness address, recorded as a structured stimulus vector) or
it provably covers the whole space (an UNREACHABLE proof naming the
region count).  There is no third verdict.
"""

import pytest

from repro.analysis.symbolic.reach import (
    coverage_gaps,
    exact_decode_verdict,
    upgrade_unr_report,
)
from repro.analysis.unr import (
    REACHABLE,
    UNKNOWN,
    UNREACHABLE,
    analyze_unreachability,
)
from repro.regression.configs import configuration_matrix
from repro.stbus import AddressMap, NodeConfig, Region
from repro.stbus.config import Architecture

FULL_COVER = AddressMap([
    Region(base=0, size=1 << 31, target=0),
    Region(base=1 << 31, size=1 << 31, target=1),
])


def test_default_map_gap_yields_witness():
    verdict, reason, witness = exact_decode_verdict(NodeConfig())
    assert verdict == REACHABLE
    assert witness is not None
    assert set(witness) == {"initiator", "opcode", "address", "expect"}
    address = int(witness["address"], 16)
    assert NodeConfig().resolved_map.decode(address) is None


def test_full_coverage_map_is_proven_unreachable():
    config = NodeConfig(address_map=FULL_COVER, name="cover")
    verdict, reason, witness = exact_decode_verdict(config)
    assert verdict == UNREACHABLE
    assert witness is None
    assert "interval-coverage proof" in reason
    assert "2 region(s)" in reason


def test_path_masked_region_stays_reachable():
    """Full address coverage does not kill the bin when some region is
    reachable by no initiator: a request there still errors."""
    config = NodeConfig(
        architecture=Architecture.PARTIAL_CROSSBAR,
        connectivity=frozenset({(0, 0), (1, 0), (1, 1)}),
        address_map=FULL_COVER,
        name="masked",
    )
    # Both targets are reachable by *someone*, so the config is legal,
    # but nothing masks a region entirely here -> exact proof holds.
    verdict, _, _ = exact_decode_verdict(config)
    assert verdict == UNREACHABLE


def test_coverage_gaps_complement():
    gaps = coverage_gaps(NodeConfig().resolved_map)
    assert gaps  # the default map covers a sliver of the space
    map_ = NodeConfig().resolved_map
    for start, end in gaps:
        assert start < end
        assert map_.decode(start) is None
        assert map_.decode(end - 1) is None
    assert not coverage_gaps(FULL_COVER)


def test_upgrade_turns_probe_unknown_into_exact_proof():
    """The showcase: a fully-covered map defeats the probe engine
    (UNKNOWN) but not the interval engine (UNREACHABLE)."""
    config = NodeConfig(address_map=FULL_COVER, name="cover")
    report = analyze_unreachability(config)
    before = report.verdict_for("decode", "error")
    assert before.verdict == UNKNOWN  # the honest probe-based refusal
    upgrade = upgrade_unr_report(report, config)
    after = report.verdict_for("decode", "error")
    assert after.verdict == UNREACHABLE
    assert upgrade.unknown_before == 2  # decode:error + response:error
    assert upgrade.unknown_after == 0
    assert upgrade.unknown_free
    keys = {d.bin_key for d in upgrade.deltas}
    assert keys == {"decode:error", "response:error"}
    for delta in upgrade.deltas:
        assert delta.old_verdict == UNKNOWN
        assert delta.new_verdict == UNREACHABLE


def test_upgrade_attaches_witness_vectors_to_reachable_bins():
    config = NodeConfig()
    report = analyze_unreachability(config)
    upgrade = upgrade_unr_report(report, config)
    assert upgrade.unknown_after == 0
    verdict = report.verdict_for("decode", "error")
    assert verdict.verdict == REACHABLE
    assert verdict.witness is not None
    assert verdict.witness["expect"]
    # The witness address must be bus-aligned legal stimulus.
    assert int(verdict.witness["address"], 16) % config.bus_bytes == 0
    # And serialization now carries it.
    assert "witness" in verdict.to_dict()


@pytest.mark.parametrize(
    "config", configuration_matrix(small=True),
    ids=[c.name for c in configuration_matrix(small=True)],
)
def test_matrix_is_unknown_free_after_upgrade(config):
    report = analyze_unreachability(config)
    upgrade = upgrade_unr_report(report, config)
    assert upgrade.unknown_after == 0
    assert report.counts()[UNKNOWN] == 0


def test_upgrade_serializes():
    config = NodeConfig()
    report = analyze_unreachability(config)
    upgrade = upgrade_unr_report(report, config)
    data = upgrade.to_dict()
    assert data["unknown_before"] == upgrade.unknown_before
    assert data["unknown_after"] == 0
    assert len(data["deltas"]) == len(upgrade.deltas)
