"""python -m repro.analysis CLI behavior, JSON schema and the golden UNR
verdicts for the stock node configuration."""

import json
import os

from repro.analysis.cli import main

GOLDEN = os.path.join(
    os.path.dirname(__file__), os.pardir, "golden", "unr_stock_node.json"
)


def test_stock_text_report(capsys):
    assert main(["--stock"]) == 0
    out = capsys.readouterr().out
    assert "node/rtl: CLEAN" in out
    assert "node/bca: CLEAN" in out
    assert "cross-view cones OK" in out
    assert "UNREACHABLE" in out
    assert "tb.prog.req = 0" in out  # the blocking constant


def test_stock_json_matches_golden(capsys):
    assert main(["--stock", "--format", "json"]) == 0
    got = json.loads(capsys.readouterr().out)
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        expected = json.load(handle)
    assert got == expected


def test_json_envelope_schema(capsys):
    assert main(["--stock", "--format", "json", "--view", "rtl"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["schema_version"] == 1
    assert data["clean"] is True
    config = data["configs"][0]
    assert config["schema_version"] == 1
    assert set(config["views"]) == {"rtl"}
    assert config["views"]["rtl"]["complete"] is True
    assert config["unr"]["unreachable"] == 3
    assert config["unr"]["model_unreachable"] == []


def test_no_unr_flag_drops_the_verdicts(capsys):
    assert main(["--stock", "--format", "json", "--no-unr"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["configs"][0]["unr"] is None


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("race-delta-overwrite", "tie-off-conflict", "cdc-crossing",
                 "xview-cone", "unr-model-unreachable"):
        assert rule in out


def test_conflicting_sources_is_a_usage_error(capsys):
    assert main(["--stock", "--matrix"]) == 2


def test_unknown_rule_is_a_usage_error(capsys):
    assert main(["--stock", "--rules", "no-such-rule"]) == 2


def test_bad_inline_waiver_is_a_usage_error(capsys):
    assert main(["--stock", "--waive", "missing-colon"]) == 2


def test_config_dir_source(tmp_path, capsys):
    from repro.stbus import NodeConfig

    config = NodeConfig(name="dircfg")
    (tmp_path / "dircfg.cfg").write_text(config.to_text())
    assert main([str(tmp_path)]) == 0
    assert "dircfg/rtl: CLEAN" in capsys.readouterr().out


def test_waiver_file_shared_with_lint(tmp_path, capsys):
    # A lint-dialect waiver file parses and applies cleanly here too.
    waivers = tmp_path / "waivers.txt"
    waivers.write_text("race-* tb.* # shared dialect\n")
    assert main(["--stock", "--waivers", str(waivers)]) == 0


def test_module_entry_point():
    import subprocess
    import sys

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0
    assert "race-delta-overwrite" in proc.stdout
