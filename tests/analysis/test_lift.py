"""Unit tests for the AST-to-IR process lifter."""

from repro.analysis.symbolic.ir import (
    Const,
    Mux,
    evaluate,
    free_vars,
    is_closed,
)
from repro.analysis.symbolic.lift import lift_process, lift_simulator
from repro.kernel import Module, Simulator


def _lift_one(sim, name):
    for info in sim.comb_processes + sim.clocked_processes:
        if info.name == name:
            return lift_process(info)
    raise AssertionError(f"no process named {name}")


def test_constant_drive_lifts_closed():
    sim = Simulator()
    top = Module(sim, "t")
    clk = top.signal("clk")
    out = top.signal("out", width=4)
    top.comb(lambda: out.drive(9), [clk], name="tie")
    lifted = _lift_one(sim, "t.tie")
    assert lifted.status == "clean"
    assign = lifted.assign_for("t.out")
    assert is_closed(assign.expr)
    assert evaluate(assign.expr, {}) == 9


def test_signal_reads_become_free_variables():
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    b = top.signal("b", width=4)
    out = top.signal("out", width=8)
    top.comb(lambda: out.drive((a.value << 4) | b.value), [a, b],
             name="pack")
    lifted = _lift_one(sim, "t.pack")
    assert lifted.status == "clean"
    assign = lifted.assign_for("t.out")
    assert free_vars(assign.expr) == {"t.a", "t.b"}
    assert evaluate(assign.expr, {"t.a": 3, "t.b": 5}) == 0x35


def test_if_else_becomes_mux():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    out = top.signal("out", width=4)

    def decide():
        if sel.value:
            out.drive(7)
        else:
            out.drive(2)

    top.comb(decide, [sel], name="mux")
    lifted = _lift_one(sim, "t.mux")
    assert lifted.status == "clean"
    expr = lifted.assign_for("t.out").expr
    assert isinstance(expr, Mux)
    assert evaluate(expr, {"t.sel": 1}) == 7
    assert evaluate(expr, {"t.sel": 0}) == 2


def test_undriven_if_branch_holds_current_value():
    """A drive under only one arm muxes against the target's own current
    value — the kernel semantics of not driving."""
    sim = Simulator()
    top = Module(sim, "t")
    en = top.signal("en")
    out = top.signal("out", width=4)

    def gate():
        if en.value:
            out.drive(5)

    top.comb(gate, [en], name="gate")
    lifted = _lift_one(sim, "t.gate")
    expr = lifted.assign_for("t.out").expr
    assert evaluate(expr, {"t.en": 1, "t.out": 0}) == 5
    assert evaluate(expr, {"t.en": 0, "t.out": 3}) == 3


def test_locals_and_augassign_substitute_through():
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a", width=8)
    out = top.signal("out", width=8)

    def calc():
        x = a.value & 0x0F
        x += 1
        out.drive(x & 0xFF)

    top.comb(calc, [a], name="calc")
    lifted = _lift_one(sim, "t.calc")
    assert lifted.status == "clean"
    expr = lifted.assign_for("t.out").expr
    assert evaluate(expr, {"t.a": 0x7F}) == 0x10


def test_self_attribute_constants_resolve():
    sim = Simulator()

    class Widget(Module):
        LIMIT = 6

        def __init__(self, sim, name):
            super().__init__(sim, name)
            self.bias = 3
            self.inp = self.signal("inp", width=4)
            self.out = self.signal("out", width=4)
            self.comb(self._drive, [self.inp], name="drv")

        def _drive(self):
            self.out.drive((self.inp.value + self.bias) & self.LIMIT)

    Widget(sim, "w")
    lifted = _lift_one(sim, "w.drv")
    assert lifted.status == "clean"
    expr = lifted.assign_for("w.out").expr
    assert evaluate(expr, {"w.inp": 5}) == (5 + 3) & 6


def test_none_guard_is_decided_statically():
    """`if port is None: return` is a construction-time fact, not a
    runtime branch — the lifter resolves it and never goes opaque."""
    sim = Simulator()

    class Opt(Module):
        def __init__(self, sim, name, extra):
            super().__init__(sim, name)
            self.extra = extra
            self.inp = self.signal("inp")
            self.out = self.signal("out")
            self.comb(self._drive, [self.inp], name="drv")

        def _drive(self):
            if self.extra is None:
                return
            self.out.drive(self.inp.value)

    Opt(sim, "on", extra=object())
    Opt(sim, "off", extra=None)
    on = _lift_one(sim, "on.drv")
    off = _lift_one(sim, "off.drv")
    assert on.status == "clean"
    assert on.assign_for("on.out") is not None
    assert off.status == "clean"  # dead code eliminated, nothing driven
    assert not off.assigns


def test_chained_comparison_expands():
    sim = Simulator()
    top = Module(sim, "t")
    a = top.signal("a", width=4)
    ok = top.signal("ok")
    top.comb(lambda: ok.drive(1 if 2 <= a.value < 9 else 0), [a],
             name="rangechk")
    lifted = _lift_one(sim, "t.rangechk")
    assert lifted.status == "clean"
    expr = lifted.assign_for("t.ok").expr
    assert evaluate(expr, {"t.a": 4}) == 1
    assert evaluate(expr, {"t.a": 1}) == 0
    assert evaluate(expr, {"t.a": 9}) == 0


def test_unsupported_construct_degrades_honestly():
    state = []
    sim = Simulator()
    top = Module(sim, "t")
    clk = top.signal("clk")
    out = top.signal("out")

    def weird():
        for _ in range(2):
            state.append(1)
        out.drive(1)

    top.comb(weird, [clk], name="weird")
    lifted = _lift_one(sim, "t.weird")
    assert lifted.status == "partial"  # the drive still lifts
    reasons = lifted.all_opaque_reasons()
    assert reasons and any("For" in r or "for" in r for r in reasons)
    assert any("line" in r for r in reasons)


def test_lift_simulator_covers_every_process():
    sim = Simulator()
    top = Module(sim, "t")
    clk = top.signal("clk")
    a = top.signal("a")
    top.comb(lambda: a.drive(1), [clk], name="c")
    top.clocked(lambda: clk.drive(clk.value ^ 1), name="k",
                reads=[clk], writes=[clk])
    report = lift_simulator(sim)
    assert report.n_processes == 2
    assert {p.name for p in report.processes} == {"t.c", "t.k"}
    assert report.process_for("t.c").status == "clean"
    data = report.to_dict()
    assert data["n_processes"] == 2


def test_equal_branches_collapse():
    sim = Simulator()
    top = Module(sim, "t")
    sel = top.signal("sel")
    out = top.signal("out")

    def same():
        if sel.value:
            out.drive(1)
        else:
            out.drive(1)

    top.comb(same, [sel], name="same")
    lifted = _lift_one(sim, "t.same")
    expr = lifted.assign_for("t.out").expr
    assert isinstance(expr, Const)
    assert evaluate(expr, {}) == 1
