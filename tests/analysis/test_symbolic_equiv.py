"""Functional RTL≡BCA equivalence: clean proofs and bug detection.

Two engines back the per-port verdicts: exhaustive small-domain
enumeration of the lifted comb cones (skipped with an honest diagnostic
past the budget) and deterministic lockstep execution of targeted
scenarios on both views.  The shipped models must prove EQUIVALENT on
every port; every registered injectable BCA bug must be caught
statically on a configuration where it is architecturally observable.
"""

import pytest

from repro.analysis.symbolic.equiv import (
    EQUIVALENT,
    MISMATCH,
    check_functional_equivalence,
)
from repro.analysis.symbolic.report import run_symbolic_analysis
from repro.bca import ALL_BUGS
from repro.regression.configs import configuration_matrix
from repro.stbus import NodeConfig

MATRIX = configuration_matrix()
SMALL = configuration_matrix(small=True)


def _first(predicate):
    return next(c for c in MATRIX if predicate(c))


def test_stock_node_proves_equivalent_on_every_port():
    ports, findings, lifted = check_functional_equivalence(NodeConfig())
    assert ports
    assert all(p.verdict == EQUIVALENT for p in ports)
    assert not [f for f in findings if f.rule == "xview-function"]
    assert set(lifted) == {"rtl", "bca"}
    # Both engines actually ran: enumeration points and lockstep cycles.
    assert any(p.comb_points > 0 for p in ports)
    assert all(p.lockstep_cycles > 0 for p in ports)
    assert all(p.scenarios for p in ports)


@pytest.mark.parametrize(
    "config", SMALL, ids=[c.name for c in SMALL]
)
def test_small_matrix_is_equivalence_clean(config):
    report = run_symbolic_analysis(config)
    assert report.equivalence_clean, (
        "\n".join(p.render() for p in report.ports)
    )


#: bug -> a matrix configuration where the defect is observable.
BUG_CONFIGS = {
    "lru-recency-stuck": _first(
        lambda c: "lru" in c.name and c.n_initiators == 3
    ),
    "subword-lane-misplacement": MATRIX[0],
    "src-tag-truncation": _first(lambda c: c.n_initiators == 8),
    "chunk-lock-ignored": MATRIX[0],
    "prog-update-stale": _first(
        lambda c: c.has_programming_port and "programmable" in c.name
    ),
}


def test_every_registered_bug_has_a_detection_config():
    assert set(BUG_CONFIGS) == set(ALL_BUGS)


@pytest.mark.parametrize("bug", sorted(BUG_CONFIGS))
def test_registered_bug_is_detected_statically(bug):
    config = BUG_CONFIGS[bug]
    report = run_symbolic_analysis(config, bca_bugs=(bug,))
    assert not report.equivalence_clean, (
        f"{bug} on {config.name} survived the equivalence proof"
    )
    mismatched = [p for p in report.ports if p.verdict == MISMATCH]
    assert mismatched
    witness = mismatched[0].witness
    assert witness is not None
    assert witness["engine"] in ("lockstep", "comb")
    assert "signal" in witness
    findings = [f for f in report.findings if f.rule == "xview-function"]
    assert findings and all(f.severity.value == "error" for f in findings)
    assert report.bca_bugs == [bug]


def test_budget_overflow_degrades_honestly():
    """A tiny budget skips every cone with a diagnostic instead of a
    false verdict; the lockstep engine still proves the ports."""
    report = run_symbolic_analysis(NodeConfig(), budget=2)
    assert report.equivalence_clean
    skips = [f for f in report.findings
             if f.rule == "symbolic-domain-too-large"]
    assert skips
    assert all(f.severity.value == "info" for f in skips)
    assert any(p.comb_skipped for p in report.ports)
    assert all(p.comb_points == 0 for p in report.ports)


def test_port_reports_serialize():
    report = run_symbolic_analysis(NodeConfig())
    data = report.to_dict()
    assert data["equivalence_clean"] is True
    assert len(data["ports"]) == len(report.ports)
    for entry in data["ports"]:
        assert entry["verdict"] == EQUIVALENT
        assert "witness" not in entry  # only mismatches carry one
    assert "bca_bugs" not in data  # clean run: key suppressed
