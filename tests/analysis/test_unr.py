"""Coverage-unreachability verdicts against the full bin universe."""

from repro.analysis.unr import (
    REACHABLE,
    UNKNOWN,
    UNREACHABLE,
    analyze_unreachability,
)
from repro.catg.coverage import build_node_coverage
from repro.stbus import NodeConfig, ProtocolType
from repro.stbus.routing import AddressMap, Region


def _verdict(report, group, bin_name):
    verdict = report.verdict_for(group, bin_name)
    assert verdict is not None, f"no verdict for {group}:{bin_name}"
    return verdict


def test_stock_config_proves_the_pruned_bins_unreachable():
    # The acceptance case: the stock node (T2, no programming port)
    # prunes ordering:* and programming:* from its model; the engine must
    # prove them unreachable independently, with the blocking constant.
    report = analyze_unreachability(NodeConfig())
    programming = _verdict(report, "programming", "write")
    assert programming.verdict == UNREACHABLE
    assert not programming.in_model
    assert "tb.prog.req = 0" in programming.reason  # the blocking constant
    ordering = _verdict(report, "ordering", "out_of_order")
    assert ordering.verdict == UNREACHABLE
    assert "protocol_type=T2" in ordering.reason
    # in_order IS reachable (group-level pruning, not bin unreachability).
    assert _verdict(report, "ordering", "in_order").verdict == REACHABLE
    # And nothing the model keeps may be unreachable.
    assert report.model_unreachable() == []
    assert len(report.pruning_validated()) == 3


def test_every_in_model_bin_is_proven_or_unknown_never_unreachable():
    for config in (
        NodeConfig(),
        NodeConfig(protocol_type=ProtocolType.T3, name="t3"),
        NodeConfig(has_programming_port=True, name="prog"),
        NodeConfig(data_width_bits=8, name="w8"),
        NodeConfig(data_width_bits=128, name="w128"),
        NodeConfig(n_initiators=1, name="solo"),
    ):
        report = analyze_unreachability(config)
        assert report.model_unreachable() == [], config.name
        assert report.findings() == []


def test_full_universe_covers_the_model():
    # Every bin of the pruned model has a verdict (the universe is a
    # superset of any configuration's model).
    config = NodeConfig(protocol_type=ProtocolType.T3,
                        has_programming_port=True, name="big")
    report = analyze_unreachability(config)
    keys = {v.key for v in report.verdicts}
    model = build_node_coverage(config)
    for group_name, group in model.groups.items():
        for bin_name in group.bins:
            assert f"{group_name}:{bin_name}" in keys


def test_wide_bus_blocks_long_packets():
    report = analyze_unreachability(NodeConfig(data_width_bits=128,
                                               name="w128"))
    verdict = _verdict(report, "request_len", "16")
    assert verdict.verdict == UNREACHABLE
    assert not verdict.in_model
    assert "64 bytes" in verdict.reason
    assert _verdict(report, "request_len", "4").verdict == REACHABLE


def test_byte_bus_has_no_partial_enable():
    report = analyze_unreachability(NodeConfig(data_width_bits=8, name="w8"))
    verdict = _verdict(report, "be", "partial")
    assert verdict.verdict == UNREACHABLE
    assert "1 bit wide" in verdict.reason  # the value-range argument


def test_single_initiator_cannot_contend():
    report = analyze_unreachability(NodeConfig(n_initiators=1, name="solo"))
    verdict = _verdict(report, "conflict", "contended")
    assert verdict.verdict == UNREACHABLE
    assert "single-initiator" in verdict.reason


def test_programming_port_present_makes_bins_reachable():
    report = analyze_unreachability(NodeConfig(has_programming_port=True,
                                               name="prog"))
    verdict = _verdict(report, "programming", "write")
    assert verdict.verdict == REACHABLE
    assert verdict.in_model


def test_fully_mapped_address_space_degrades_to_unknown():
    # One region covering all 2^32 addresses: every probe decodes, so the
    # engine cannot prove decode errors unreachable NOR find a witness —
    # the documented conservative UNKNOWN.
    config = NodeConfig(
        n_targets=1,
        address_map=AddressMap([Region(0, 1 << 32, 0)]),
        name="fullmap",
    )
    report = analyze_unreachability(config)
    verdict = _verdict(report, "decode", "error")
    assert verdict.verdict == UNKNOWN
    assert "conservative" in verdict.reason
    assert _verdict(report, "response", "error").verdict == UNKNOWN
    # UNKNOWN in-model bins are NOT findings (only proven-unreachable are).
    assert report.findings() == []


def test_render_and_dict_roundtrip():
    report = analyze_unreachability(NodeConfig())
    text = report.render()
    assert "UNR analysis" in text
    assert "pruning validated" in text
    data = report.to_dict()
    assert data["schema_version"] == 1
    assert data["n_bins"] == len(report.verdicts)
    assert data["unreachable"] == 3
    assert data["model_unreachable"] == []


def test_constants_sharpen_programming_verdict():
    # With an elaborated environment, the blocking net comes from the
    # constant engine rather than the configuration-level argument.
    from repro.analysis.constants import derive_constants
    from repro.lint.graph import DesignGraph
    from repro.lint.runner import build_env

    config = NodeConfig()
    env = build_env(config, "rtl")
    constants = derive_constants(DesignGraph.from_simulator(env.sim))
    report = analyze_unreachability(config, constants=constants)
    assert _verdict(report, "programming", "write").verdict == UNREACHABLE
