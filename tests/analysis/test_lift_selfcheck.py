"""Self-check: every shipped process lifts cleanly or is waived.

The symbolic pass is only as strong as its coverage of the shipped code:
a process the lifter silently degrades to OPAQUE is a process the
equivalence and constant engines cannot see.  This suite enumerates
every process of every full common-environment build (all matrix
configurations, both views — node models, BFMs, memories, monitors,
checkers, the coverage probe) and demands that each either lifts with a
``clean`` status or matches an entry in the explicit waiver registry
below.

The registry is deliberately in the test, not in the lifter: adding an
unliftable construct to a previously-clean process fails here until a
human signs it off with a reason.  The reverse rots too — a waiver whose
pattern no longer matches any non-clean process fails the no-rot check,
so stale entries cannot accumulate.
"""

from fnmatch import fnmatch

import pytest

from repro.analysis.symbolic.lift import lift_simulator
from repro.lint.runner import build_env
from repro.regression.configs import configuration_matrix

MATRIX = configuration_matrix()

#: process-name glob -> reason the degradation is acceptable.  Matching
#: processes may lift ``partial`` (some statements opaque) or ``opaque``
#: (no liftable drive at all); everything else must be ``clean``.
OPAQUE_WAIVERS = {
    # Verification components: scoreboards and protocol checkers keep
    # Python dict/list state and raise on violations — modeling them
    # symbolically is out of scope (they observe, they do not drive
    # design nets the equivalence engines compare).
    "tb.arb_chk._clk": "arbitration checker: Python bookkeeping state",
    "tb.chk_init*._clk": "protocol checker: assertion bookkeeping",
    "tb.chk_targ*._clk": "protocol checker: assertion bookkeeping",
    "tb.chk_prog._clk": "protocol checker: assertion bookkeeping",
    "tb.mon_init*._clk": "monitor: appends observed cells to a list",
    "tb.mon_targ*._clk": "monitor: appends observed cells to a list",
    "tb.coverage_probe": "coverage probe: updates covergroup state",
    # Node arbitration: data-dependent loops over requesters (the very
    # logic the lockstep engine exercises dynamically instead).
    "tb.dut._compute_grants": "arbiter: loop over requesters",
    "tb.dut._compute_response_grants": "arbiter: loop over responders",
    "tb.dut._grant_proc": "arbiter: loop over requesters",
    "tb.dut._resp_grant_proc": "arbiter: loop over responders",
    # Targets/masters: transaction queues and byte images are inherently
    # stateful; their ports are covered by the lockstep engine.
    "tb.mem*._clk": "memory target: byte image + response queue",
    "tb.mem*._gnt_comb": "memory target: backpressure counter state",
    "tb.bfm*._clk": "BFM: transaction queue state",
    "tb.prog_master._clk": "programming master: operation queue",
    "tb.dut._clk_proc": "node engine: routing/queue bookkeeping",
    "tb.dut._on_clock": "node engine: routing/queue bookkeeping",
    "tb.dut._prog_comb": "register read mux: subscript on register list",
}


def _waived(name: str) -> bool:
    return any(fnmatch(name, pattern) for pattern in OPAQUE_WAIVERS)


@pytest.mark.parametrize(
    "config", MATRIX, ids=[config.name for config in MATRIX]
)
@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_every_process_lifts_clean_or_is_waived(config, view):
    env = build_env(config, view)
    report = lift_simulator(env.sim)
    assert report.n_processes > 0
    offenders = [
        proc for proc in report.processes
        if proc.status != "clean" and not _waived(proc.name)
    ]
    assert not offenders, (
        "unwaived lift degradation (add the construct to the lifter or "
        "a waiver with a reason):\n"
        + "\n".join(f"  {p.name} [{p.status}]\n{p.render()}"
                    for p in offenders)
    )
    # The pass must see real logic, not waive everything away: even the
    # waived partial processes must contribute fully-lifted assignments.
    assert any(
        assign.clean for proc in report.processes for assign in proc.assigns
    ), f"{config.name}/{view}: the lifter recovered no assignment at all"


def test_waiver_registry_does_not_rot():
    """Every waiver pattern must still match a non-clean process in at
    least one shipped build; delete entries that stopped matching."""
    matched = set()
    sample = [MATRIX[0], MATRIX[-1],
              next(c for c in MATRIX if c.has_programming_port)]
    for config in sample:
        for view in ("rtl", "bca"):
            env = build_env(config, view)
            for proc in lift_simulator(env.sim).processes:
                if proc.status == "clean":
                    continue
                for pattern in OPAQUE_WAIVERS:
                    if fnmatch(proc.name, pattern):
                        matched.add(pattern)
    stale = set(OPAQUE_WAIVERS) - matched
    assert not stale, f"waivers no longer matching anything: {sorted(stale)}"


def test_lift_reports_name_the_opaque_constructs():
    """Degradation must be honest: every non-clean process carries at
    least one reason naming the construct and source line."""
    env = build_env(MATRIX[0], "rtl")
    report = lift_simulator(env.sim)
    for proc in report.processes:
        if proc.status == "clean":
            continue
        reasons = proc.all_opaque_reasons()
        assert reasons, f"{proc.name} degraded without a reason"
        assert any("line" in reason for reason in reasons), (
            f"{proc.name}: reasons carry no source location: {reasons}"
        )
