"""Fabric builder tests: validation, Figure 1 topology, view alignment."""

import pytest

from repro.fabric import FabricError, FabricSpec
from repro.stbus import (
    AddressMap,
    NodeConfig,
    Opcode,
    ProtocolType,
    Region,
    Transaction,
    response_data_from_cells,
)

MEM_A = 0x0000
MEM_B = 0x1000
REGS = 0x2000


def figure1_spec():
    """The paper's Figure 1 network, declaratively."""
    spec = FabricSpec()
    cfg_a = NodeConfig(
        name="nodeA", protocol_type=ProtocolType.T2,
        n_initiators=3, n_targets=2,
        address_map=AddressMap([
            Region(MEM_A, 0x1000, 0),
            Region(MEM_B, 0x1100, 1),
        ]),
    )
    cfg_b = NodeConfig(
        name="nodeB", protocol_type=ProtocolType.T3,
        n_initiators=1, n_targets=2,
        address_map=AddressMap([
            Region(MEM_B, 0x1000, 0),
            Region(REGS, 0x100, 1),
        ]),
    )
    spec.master("cpu0", width=32)
    spec.master("cpu1", width=32)
    spec.master("dma64", width=64)
    spec.node("nodeA", cfg_a)
    spec.node("nodeB", cfg_b)
    spec.size_converter("sz", ProtocolType.T2)
    spec.type_converter("tc", ProtocolType.T2, ProtocolType.T3)
    spec.memory("memA", latency=2)
    spec.memory("memB", latency=4)
    spec.register_decoder("regs", n_regs=16)
    spec.connect("cpu0", ("nodeA", "init", 0))
    spec.connect("cpu1", ("nodeA", "init", 1))
    spec.connect("dma64", ("sz", "up"))
    spec.connect(("sz", "down"), ("nodeA", "init", 2))
    spec.connect(("nodeA", "targ", 0), "memA")
    spec.connect(("nodeA", "targ", 1), ("tc", "up"))
    spec.connect(("tc", "down"), ("nodeB", "init", 0))
    spec.connect(("nodeB", "targ", 0), "memB")
    spec.connect(("nodeB", "targ", 1), "regs")
    return spec


def load_figure1_traffic(fabric):
    fabric.masters["cpu0"].load_program([
        (Transaction(Opcode.store(4), MEM_A + 0x10,
                     data=b"\x01\x02\x03\x04"), 0),
        (Transaction(Opcode.load(4), MEM_A + 0x10), 0),
        (Transaction(Opcode.store(8), MEM_B + 0x20, data=bytes(range(8))), 0),
        (Transaction(Opcode.load(8), MEM_B + 0x20), 0),
    ])
    fabric.masters["cpu1"].load_program([
        (Transaction(Opcode.store(4), MEM_A + 0x40,
                     data=b"\x0A\x0B\x0C\x0D"), 1),
        (Transaction(Opcode.load(4), MEM_A + 0x40), 1),
    ])
    fabric.masters["dma64"].load_program([
        (Transaction(Opcode.store(4), REGS + 0x08,
                     data=b"\xCA\xFE\xBA\xBE"), 0),
        (Transaction(Opcode.load(4), REGS + 0x08), 0),
    ])


@pytest.mark.parametrize("view", ["rtl", "bca"])
def test_figure1_fabric_end_to_end(view):
    fabric = figure1_spec().build(view=view)
    load_figure1_traffic(fabric)
    fabric.run_until_drained()
    cpu0 = fabric.masters["cpu0"]
    assert len(cpu0.response_packets) == 4
    remote = response_data_from_cells(
        cpu0.response_packets[3], Opcode.load(8), 4, address=MEM_B + 0x20)
    assert remote == bytes(range(8))
    dma = fabric.masters["dma64"]
    reg = response_data_from_cells(
        dma.response_packets[1], Opcode.load(4), 8, address=REGS + 0x08)
    assert reg == b"\xCA\xFE\xBA\xBE"
    assert fabric.registers["regs"].read_register(2) == b"\xCA\xFE\xBA\xBE"
    assert fabric.memories["memA"].read_mem(MEM_A + 0x40, 4) == \
        b"\x0A\x0B\x0C\x0D"


def test_figure1_views_pin_aligned():
    traces = {}
    for view in ("rtl", "bca"):
        fabric = figure1_spec().build(view=view)
        load_figure1_traffic(fabric)
        fabric.elaborate()
        signals = fabric.all_port_signals()
        rows = []
        for _ in range(500):
            fabric.sim.step()
            rows.append(tuple(s.value for s in signals))
        traces[view] = rows
    assert traces["rtl"] == traces["bca"]


def test_validation_rejects_unwired_node_port():
    spec = FabricSpec()
    spec.master("m", width=32)
    spec.node("n", NodeConfig(n_initiators=1, n_targets=1))
    spec.connect("m", ("n", "init", 0))
    # target 0 left unwired
    with pytest.raises(FabricError, match="unwired"):
        spec.validate()


def test_validation_rejects_double_connection():
    spec = FabricSpec()
    spec.master("m", width=32)
    spec.memory("mem")
    spec.memory("mem2")
    spec.connect("m", "mem")
    spec.connect("m", "mem2")
    with pytest.raises(FabricError, match="twice"):
        spec.validate()


def test_validation_rejects_width_mismatch():
    spec = FabricSpec()
    spec.master("m", width=64)
    spec.node("n", NodeConfig(n_initiators=1, n_targets=1,
                              data_width_bits=32))
    spec.memory("mem")
    spec.connect("m", ("n", "init", 0))
    spec.connect(("n", "targ", 0), "mem")
    with pytest.raises(FabricError, match="width mismatch"):
        spec.validate()


def test_validation_rejects_two_sources():
    spec = FabricSpec()
    spec.master("m1", width=32)
    spec.master("m2", width=32)
    spec.connect("m1", "m2")
    with pytest.raises(FabricError, match="request driver"):
        spec.validate()


def test_validation_rejects_duplicate_names():
    spec = FabricSpec()
    spec.master("x", width=32)
    with pytest.raises(FabricError, match="duplicate"):
        spec.memory("x")


def test_validation_rejects_bad_endpoints():
    spec = FabricSpec()
    spec.node("n", NodeConfig(n_initiators=1, n_targets=1))
    spec.master("m", width=32)
    spec.memory("mem")
    spec.connect("m", ("n", "init", 5))
    with pytest.raises(FabricError, match="out of range"):
        spec.validate()
    spec2 = FabricSpec()
    spec2.master("m", width=32)
    spec2.connect("m", "ghost")
    with pytest.raises(FabricError, match="unknown component"):
        spec2.validate()


def test_build_rejects_bad_view():
    spec = FabricSpec()
    spec.master("m", width=32)
    spec.memory("mem")
    spec.connect("m", "mem")
    with pytest.raises(FabricError):
        spec.build(view="gate")


def test_master_direct_to_memory():
    """The degenerate fabric: a master wired straight to a memory."""
    spec = FabricSpec()
    spec.master("m", width=32)
    spec.memory("mem", latency=1)
    spec.connect("m", "mem")
    fabric = spec.build()
    fabric.masters["m"].load_program([
        (Transaction(Opcode.store(4), 0x0, data=b"\x11\x22\x33\x44"), 0),
        (Transaction(Opcode.load(4), 0x0), 0),
    ])
    fabric.run_until_drained()
    got = response_data_from_cells(
        fabric.masters["m"].response_packets[1], Opcode.load(4), 4)
    assert got == b"\x11\x22\x33\x44"


def test_port_of_lookup():
    spec = FabricSpec()
    spec.master("m", width=32)
    spec.memory("mem")
    spec.connect("m", "mem")
    fabric = spec.build()
    assert fabric.port_of("m") is fabric.port_of("mem")
    with pytest.raises(FabricError):
        fabric.port_of("ghost")
