"""The opt-in UNR annotation and the flow's static-analysis gate."""

import os

from repro.regression import CommonVerificationFlow, FlowState, RegressionRunner
from repro.stbus import NodeConfig

CFG = dict(n_initiators=1, n_targets=1, name="unrgate")
TESTS = ["t01_sanity_write_read"]


def _run(tmp_path, subdir, **kwargs):
    workdir = str(tmp_path / subdir)
    runner = RegressionRunner([NodeConfig(**CFG)], tests=TESTS, seeds=(1,),
                              workdir=workdir, **kwargs)
    runner.run()
    with open(os.path.join(workdir, "unrgate__report.txt"),
              encoding="utf-8") as handle:
        return handle.read()


def test_report_byte_identical_with_flag_off(tmp_path):
    baseline = _run(tmp_path, "baseline")
    explicit_off = _run(tmp_path, "off", unr=False)
    assert explicit_off == baseline
    assert "UNR analysis" not in baseline


def test_unr_flag_annotates_the_config_report(tmp_path):
    report = _run(tmp_path, "on", unr=True)
    assert "UNR analysis" in report
    assert "UNREACHABLE" in report
    # Full coverage on this config: the annotation says so rather than
    # cross-referencing holes.
    assert ("no coverage holes" in report
            or "coverage holes vs static verdicts" in report)
    # The annotation is strictly appended: the flag-off report is a prefix.
    baseline = _run(tmp_path, "prefix")
    assert report.startswith(baseline)


def test_flow_analysis_gate_runs_and_passes(tmp_path):
    flow = CommonVerificationFlow(NodeConfig(**CFG), tests=TESTS, seeds=(1,),
                                  workdir=str(tmp_path), analysis=True)
    outcome = flow.execute()
    assert outcome.signed_off, outcome.render()
    events = [e for e in outcome.history
              if e.state is FlowState.STATIC_ANALYSIS]
    assert len(events) == 1
    assert "no races" in events[0].detail
    assert "proven unreachable" in events[0].detail


def test_flow_without_analysis_skips_the_gate(tmp_path):
    flow = CommonVerificationFlow(NodeConfig(**CFG), tests=TESTS, seeds=(1,),
                                  workdir=str(tmp_path))
    outcome = flow.execute()
    assert outcome.signed_off
    assert all(e.state is not FlowState.STATIC_ANALYSIS
               for e in outcome.history)
