"""End-to-end telemetry acceptance for the regression batch engine.

The observability contract: a ``--jobs 2`` batch with telemetry enabled
produces (a) a metrics rollup with per-run phase timings and kernel
counters, (b) a Chrome/Perfetto trace where each worker process renders
as its own lane, (c) a structured JSON-lines log carrying (config, test,
seed, view) context — and every report artifact stays byte-identical to
a run without any telemetry flags.
"""

import json
import os

import pytest

from repro.regression import RegressionRunner
from repro.regression.flow import CommonVerificationFlow
from repro.stbus import NodeConfig
from repro.telemetry import METRICS_SCHEMA, PHASE_NAMES, TelemetryConfig
from repro.telemetry.cli import main as telemetry_main

TESTS = ["t01_sanity_write_read", "t02_random_uniform"]

#: Kernel counters every run must report.
KERNEL_COUNTERS = ("cycles", "delta_iterations", "process_activations",
                   "signal_commits", "signal_toggles", "vcd_bytes")


def _config():
    return NodeConfig(n_initiators=2, n_targets=1, name="tele")


def _run(workdir, jobs, telemetry=None):
    runner = RegressionRunner(
        [_config()], tests=TESTS, seeds=(1,), workdir=str(workdir),
        jobs=jobs, telemetry=telemetry,
    )
    return runner.run()


def _snapshot(workdir):
    return {
        name: (workdir / name).read_bytes()
        for name in sorted(os.listdir(workdir))
    }


@pytest.fixture(scope="module")
def batch(tmp_path_factory):
    """One instrumented jobs=2 batch plus a plain jobs=1 reference."""
    root = tmp_path_factory.mktemp("telemetry_batch")
    side = root / "side"
    side.mkdir()
    config = TelemetryConfig(
        metrics_out=str(side / "metrics.json"),
        trace_out=str(side / "trace.json"),
        log_out=str(side / "run.log.jsonl"),
        time_processes=True,
    )
    report = _run(root / "instrumented", jobs=2, telemetry=config)
    plain_report = _run(root / "plain", jobs=1)
    return {
        "root": root,
        "config": config,
        "report": report,
        "plain_report": plain_report,
        "metrics": json.loads((side / "metrics.json").read_text()),
        "trace": json.loads((side / "trace.json").read_text()),
        "log_lines": [
            json.loads(line)
            for line in (side / "run.log.jsonl").read_text().splitlines()
        ],
    }


def test_artifacts_byte_identical_with_and_without_telemetry(batch):
    """Acceptance (c): telemetry is a pure side channel — the parallel
    instrumented run's artifacts match the serial plain run's, byte for
    byte."""
    assert batch["report"].render() == batch["plain_report"].render()
    snap_i = _snapshot(batch["root"] / "instrumented")
    snap_p = _snapshot(batch["root"] / "plain")
    assert sorted(snap_i) == sorted(snap_p)
    for name in snap_i:
        assert snap_i[name] == snap_p[name], f"{name} differs"


def test_metrics_rollup_batch_section(batch):
    """Acceptance (a): the rollup aggregates phase timings and kernel
    counters across the batch."""
    metrics = batch["metrics"]
    assert metrics["schema"] == METRICS_SCHEMA
    section = metrics["batch"]
    assert section["jobs"] == 2
    assert section["n_runs"] == 2 * len(TESTS)
    assert section["all_signed_off"] == batch["report"].all_signed_off
    assert section["wall_seconds"] > 0
    for name in KERNEL_COUNTERS:
        assert section["kernel_totals"][name] > 0, name
    for name in ("generate", "elaborate", "run", "finalize", "compare"):
        assert section["phase_totals"].get(name, 0) > 0, name


def test_metrics_rollup_per_run_entries(batch):
    metrics = batch["metrics"]
    runs = metrics["runs"]
    assert [(r["test"], r["view"]) for r in runs] == [
        (test, view) for test in TESTS for view in ("rtl", "bca")
    ]
    for run in runs:
        assert run["config"] == "tele"
        assert run["seed"] == 1
        assert run["passed"] is True
        assert run["cycles"] > 0
        assert run["wall_seconds"] > 0
        assert run["queue_wait_seconds"] >= 0
        for name in KERNEL_COUNTERS:
            assert run["kernel"][name] > 0, name
        assert set(run["phase_seconds"]) <= set(PHASE_NAMES)
        assert run["phase_seconds"]["run"] > 0
        # --time-processes: per-process [activations, seconds]
        assert run["process_seconds"]
        for calls, seconds in run["process_seconds"].values():
            assert calls > 0
            assert seconds >= 0


def test_metrics_rollup_compares_and_histogram(batch):
    metrics = batch["metrics"]
    compares = metrics["compares"]
    assert [c["test"] for c in compares] == TESTS
    for entry in compares:
        assert entry["min_rate"] == 1.0
        assert entry["overall_rate"] == 1.0
        assert entry["seconds"] > 0
    hist = metrics["histograms"]["analyzer.port_alignment_rate"]
    # one observation per port per comparison; all aligned at 100%
    assert hist["count"] > 0
    assert hist["min"] == 1.0
    assert hist["max"] == 1.0


def test_metrics_worker_lanes(batch):
    workers = batch["metrics"]["batch"]["workers"]
    worker_lanes = [name for name in workers if name.startswith("worker-")]
    assert len(worker_lanes) == 2
    total_jobs = sum(lane["n_jobs"] for lane in workers.values())
    # every run and every comparison is attributed to exactly one lane
    assert total_jobs == 2 * len(TESTS) + len(TESTS)
    for lane in workers.values():
        assert lane["busy_seconds"] > 0
        assert 0 <= lane["utilization"] <= 1


def test_trace_renders_one_lane_per_worker(batch):
    """Acceptance (b): the trace file is Chrome/Perfetto loadable, with
    a named lane per worker process."""
    events = batch["trace"]["traceEvents"]
    assert batch["trace"]["displayTimeUnit"] == "ms"
    process_meta = [e for e in events
                    if e["ph"] == "M" and e["name"] == "process_name"]
    assert len(process_meta) == 1
    lane_names = [e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "thread_name"]
    assert "main" in lane_names
    assert lane_names.count("worker-0") == 1
    assert lane_names.count("worker-1") == 1
    spans = [e for e in events if e["ph"] == "X"]
    assert all(e["pid"] == 1 for e in spans)
    assert all(e["dur"] >= 0 and e["ts"] > 0 for e in spans)


def test_trace_spans_attributed_to_their_worker_lane(batch):
    """All spans of one (config, test, seed, view) run were recorded in
    one process, so they must land on one lane — and the batch-level
    spans must land on the main lane (tid 0)."""
    events = batch["trace"]["traceEvents"]
    by_run = {}
    for event in events:
        if event["ph"] != "X":
            continue
        args = event.get("args") or {}
        if "view" in args:
            key = (args["config"], args["test"], args["seed"], args["view"])
            by_run.setdefault(key, set()).add(event["tid"])
        if event["name"].startswith("batch."):
            assert event["tid"] == 0
    assert len(by_run) == 2 * len(TESTS) + len(TESTS)  # runs + compares
    for key, tids in by_run.items():
        assert len(tids) == 1, f"{key} spans spread over lanes {tids}"
    run_lanes = {tid for tids in by_run.values() for tid in tids}
    assert run_lanes == {1, 2}  # all work ran on the two worker lanes


def test_structured_log_carries_run_context(batch):
    records = batch["log_lines"]
    assert records[0]["event"] == "batch.start"
    assert records[0]["jobs"] == 2
    assert records[0]["tests"] == TESTS
    assert records[-1]["event"] == "batch.complete"
    assert records[-1]["n_runs"] == 2 * len(TESTS)
    completes = [r for r in records if r["event"] == "run.complete"]
    # replayed in deterministic batch order regardless of finish order
    assert [(r["test"], r["view"]) for r in completes] == [
        (test, view) for test in TESTS for view in ("rtl", "bca")
    ]
    for record in completes:
        assert record["config"] == "tele"
        assert record["seed"] == 1
        assert record["passed"] is True
        assert record["ts"] > 0
    compare_records = [r for r in records if r["event"] == "compare.complete"]
    assert [r["test"] for r in compare_records] == TESTS
    for record in compare_records:
        assert record["view"] == "compare"
        assert record["min_rate"] == 1.0


def test_summarize_cli_digests_the_real_rollup(batch, capsys):
    code = telemetry_main(["summarize", batch["config"].metrics_out])
    out = capsys.readouterr().out
    assert code == 0
    assert out.startswith("Batch: 4 runs over 1 configuration(s), jobs=2")
    assert "Slowest runs:" in out
    assert "Hottest kernel processes:" in out
    assert "Worker utilization:" in out
    assert "Worst alignment:" in out


def test_serial_telemetry_attributes_everything_to_main(tmp_path):
    config = TelemetryConfig(metrics_out=str(tmp_path / "m.json"))
    report = _run(tmp_path / "work", jobs=1, telemetry=config)
    assert all(c.all_passed for c in report.configs)
    metrics = json.loads((tmp_path / "m.json").read_text())
    assert list(metrics["batch"]["workers"]) == ["main"]
    assert metrics["batch"]["jobs"] == 1


def test_flow_tags_telemetry_files_per_iteration(tmp_path):
    config = TelemetryConfig(metrics_out=str(tmp_path / "metrics.json"))
    flow = CommonVerificationFlow(
        _config(), tests=TESTS, seeds=(1,), workdir=str(tmp_path / "work"),
        max_iterations=1, telemetry=config,
    )
    flow.execute()
    assert (tmp_path / "metrics.iter1.json").exists()
    assert not (tmp_path / "metrics.json").exists()
    tagged = json.loads((tmp_path / "metrics.iter1.json").read_text())
    assert tagged["schema"] == METRICS_SCHEMA


def test_disabled_telemetry_records_nothing_extra(tmp_path):
    """No telemetry config: results still carry kernel stats (always on)
    but no per-run payload, and no side files appear anywhere."""
    report = _run(tmp_path / "work", jobs=1)
    entry = report.configs[0].entries[0]
    for name in KERNEL_COUNTERS:
        assert entry.rtl.kernel_stats[name] > 0
    assert entry.rtl.telemetry is None
    assert entry.rtl.process_seconds == {}
    assert sorted(os.listdir(tmp_path)) == ["work"]
