"""Fault-tolerance tests for the regression batch engine.

Every fault here is injected deterministically through the ``REPRO_CHAOS``
environment hook (:mod:`repro.regression.chaos`); production batches never
set the variable, so the first tests pin down that the hooks are inert
without it.  The load-bearing invariant throughout: a batch that recovers
from a fault (retry, pool rebuild, resume) produces artifacts
*byte-identical* to a batch that never faulted.
"""

import json
import os

import pytest

from repro.regression import (
    JournalError,
    RegressionRunner,
    ResilienceConfig,
)
from repro.regression.chaos import (
    CHAOS_ENV,
    ChaosError,
    ChaosSpec,
    inject_before_run,
)
from repro.regression.cli import main as regression_main
from repro.stbus import NodeConfig, ProtocolType

TESTS = ["t01_sanity_write_read", "t02_random_uniform"]
CONFIG_NAME = "rsl_cfg"


def _configs():
    return [NodeConfig(n_initiators=2, n_targets=2,
                       protocol_type=ProtocolType.T3, name=CONFIG_NAME)]


def _run(workdir, jobs=1, resilience=None, seeds=(1,)):
    runner = RegressionRunner(
        _configs(), tests=TESTS, seeds=seeds, workdir=str(workdir),
        jobs=jobs, resilience=resilience or ResilienceConfig(),
    )
    return runner.run()


def _snapshot(workdir):
    """Every artifact in the workdir, as bytes, keyed by filename."""
    return {
        name: (workdir / name).read_bytes()
        for name in sorted(os.listdir(workdir))
    }


@pytest.fixture()
def clean_ref(tmp_path):
    """A fault-free serial run: the byte-identity reference."""
    report = _run(tmp_path / "ref")
    return report, _snapshot(tmp_path / "ref")


# -- chaos hook ---------------------------------------------------------


def test_chaos_spec_grammar():
    spec = ChaosSpec.parse("crash:cfg:t01:*:rtl:2; hang:*:*:3:bca")
    assert len(spec.rules) == 2
    crash, hang = spec.rules
    assert crash.matches("cfg", "t01", 7, "rtl", attempt=1)
    assert not crash.matches("cfg", "t01", 7, "rtl", attempt=2)  # limit
    assert not crash.matches("other", "t01", 7, "rtl", attempt=0)
    assert hang.matches("anything", "t99", 3, "bca", attempt=50)
    assert not hang.matches("anything", "t99", 4, "bca", attempt=0)
    with pytest.raises(ChaosError):
        ChaosSpec.parse("crash:only:three")
    with pytest.raises(ChaosError):
        ChaosSpec.parse("sabotage:*:*:*:*")
    with pytest.raises(ChaosError):
        ChaosSpec.parse("crash:*:*:*:*:soon")


def test_chaos_inert_without_env(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    assert ChaosSpec.from_env().rules == ()

    class _Job:
        class config:
            name = "x"
        test_name, seed, view, attempt = "t", 1, "rtl", 0
        vcd_path = None

    inject_before_run(_Job())  # must be a silent no-op


# -- crash isolation ----------------------------------------------------


def test_worker_crash_still_yields_full_report(tmp_path, monkeypatch):
    monkeypatch.setenv(
        CHAOS_ENV, f"crash:{CONFIG_NAME}:t02_random_uniform:1:bca")
    report = _run(tmp_path, resilience=ResilienceConfig(max_retries=0))
    entries = report.configs[0].entries
    assert len(entries) == len(TESTS)
    assert entries[0].status == "PASS"
    assert entries[1].status == "ERROR"
    assert not entries[1].bca.passed
    assert "chaos: injected crash" in entries[1].bca.message
    # The batch completed: summary + per-config report were written.
    assert (tmp_path / "regression_summary.txt").exists()
    assert "ERROR" in report.configs[0].render()


def test_retry_recovers_byte_identically(tmp_path, monkeypatch, clean_ref):
    ref_report, ref_snap = clean_ref
    monkeypatch.setenv(
        CHAOS_ENV, f"crash:{CONFIG_NAME}:t01_sanity_write_read:1:rtl:1")
    report = _run(tmp_path / "faulted",
                  resilience=ResilienceConfig(max_retries=2, backoff=0.0))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "faulted") == ref_snap


def test_persistent_crash_is_quarantined(tmp_path, monkeypatch):
    monkeypatch.setenv(
        CHAOS_ENV, f"crash:{CONFIG_NAME}:t02_random_uniform:1:rtl")
    report = _run(tmp_path,
                  resilience=ResilienceConfig(max_retries=2, backoff=0.0))
    entry = report.configs[0].entries[1]
    assert entry.status == "QUARANTINED"
    failures = report.configs[0].quarantined_failures()
    assert len(failures) == 1
    assert len(failures[0].history) == 3  # 1 attempt + 2 retries
    rendered = report.configs[0].render()
    assert "quarantined: 1 job(s)" in rendered
    assert not report.all_signed_off


def test_no_retries_means_plain_error(tmp_path, monkeypatch):
    monkeypatch.setenv(
        CHAOS_ENV, f"crash:{CONFIG_NAME}:t02_random_uniform:1:rtl")
    report = _run(tmp_path, resilience=ResilienceConfig(max_retries=0))
    entry = report.configs[0].entries[1]
    assert entry.status == "ERROR"  # never retried -> not quarantined
    assert not report.configs[0].quarantined_failures()


# -- deadlines ----------------------------------------------------------


def test_hang_times_out_and_quarantines(tmp_path, monkeypatch):
    monkeypatch.setenv(
        CHAOS_ENV, f"hang:{CONFIG_NAME}:t01_sanity_write_read:1:bca")
    report = _run(tmp_path, resilience=ResilienceConfig(
        run_timeout=0.5, max_retries=1, backoff=0.0))
    entry = report.configs[0].entries[0]
    assert entry.status == "QUARANTINED"
    assert entry.bca.timed_out
    assert entry.bca.kind == "TIMEOUT"
    # The un-faulted sibling entry was unaffected.
    assert report.configs[0].entries[1].status == "PASS"


def test_timeout_then_retry_recovers(tmp_path, monkeypatch, clean_ref):
    ref_report, ref_snap = clean_ref
    monkeypatch.setenv(
        CHAOS_ENV, f"hang:{CONFIG_NAME}:t01_sanity_write_read:1:rtl:1")
    report = _run(tmp_path / "faulted", resilience=ResilienceConfig(
        run_timeout=0.5, max_retries=1, backoff=0.0))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "faulted") == ref_snap


# -- pool crashes -------------------------------------------------------


def test_pool_hard_death_recovers_byte_identically(
        tmp_path, monkeypatch, clean_ref):
    ref_report, ref_snap = clean_ref
    monkeypatch.setenv(
        CHAOS_ENV, f"exit:{CONFIG_NAME}:t02_random_uniform:1:rtl:1")
    report = _run(tmp_path / "faulted", jobs=2,
                  resilience=ResilienceConfig(max_retries=2, backoff=0.0))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "faulted") == ref_snap


def test_pool_crash_mid_batch_report_complete(tmp_path, monkeypatch):
    monkeypatch.setenv(
        CHAOS_ENV, f"exit:{CONFIG_NAME}:t01_sanity_write_read:1:bca")
    report = _run(tmp_path, jobs=2,
                  resilience=ResilienceConfig(max_retries=1, backoff=0.0))
    entries = report.configs[0].entries
    assert len(entries) == len(TESTS)
    assert entries[0].status == "QUARANTINED"
    assert entries[1].status == "PASS"


# -- journal + resume ---------------------------------------------------


def test_resume_is_byte_identical_and_replay_proof(
        tmp_path, monkeypatch, clean_ref):
    ref_report, ref_snap = clean_ref
    workdir = tmp_path / "faulted"
    journal = str(tmp_path / "batch.journal.jsonl")
    monkeypatch.setenv(
        CHAOS_ENV, f"crash:{CONFIG_NAME}:t02_random_uniform:1:bca")
    first = _run(workdir, resilience=ResilienceConfig(
        max_retries=0, journal_path=journal))
    assert first.configs[0].entries[1].status == "ERROR"
    # Resume with chaos now set to crash the *already journalled* jobs:
    # if the replay re-executed anything, the batch would fail again.
    monkeypatch.setenv(
        CHAOS_ENV, f"crash:{CONFIG_NAME}:t01_sanity_write_read:*:*")
    resumed = _run(workdir, resilience=ResilienceConfig(
        max_retries=0, journal_path=journal, resume=True))
    assert resumed.render() == ref_report.render()
    assert _snapshot(workdir) == ref_snap


def test_resume_rejects_stale_artifacts(tmp_path, monkeypatch, clean_ref):
    _, ref_snap = clean_ref
    workdir = tmp_path / "run"
    journal = str(tmp_path / "batch.journal.jsonl")
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    _run(workdir, resilience=ResilienceConfig(journal_path=journal))
    vcd = workdir / f"{CONFIG_NAME}__t01_sanity_write_read__s1__rtl.vcd"
    vcd.write_bytes(vcd.read_bytes() + b"tampered\n")
    _run(workdir, resilience=ResilienceConfig(
        journal_path=journal, resume=True))
    # The tampered run (digest mismatch) was re-executed, restoring the
    # artifact; everything else replayed from the journal.
    assert _snapshot(workdir) == ref_snap


def test_resume_rejects_foreign_journal(tmp_path):
    journal = str(tmp_path / "batch.journal.jsonl")
    _run(tmp_path / "run", resilience=ResilienceConfig(journal_path=journal))
    with pytest.raises(JournalError):
        _run(tmp_path / "run", seeds=(1, 2), resilience=ResilienceConfig(
            journal_path=journal, resume=True))


def test_journal_is_valid_jsonl_with_header(tmp_path):
    journal = tmp_path / "batch.journal.jsonl"
    _run(tmp_path / "run",
         resilience=ResilienceConfig(journal_path=str(journal)))
    lines = journal.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "header"
    assert header["schema"] == "repro.regression/journal/v1"
    runs = [json.loads(line) for line in lines[1:]]
    # 2 views x 2 tests = 4 run records, plus 2 compare records.
    assert sum(1 for r in runs if r["kind"] == "run") == 4
    assert sum(1 for r in runs if r["kind"] == "compare") == 2


def test_cli_resume_requires_journal(tmp_path, capsys):
    rc = regression_main(["--resume", str(tmp_path)])
    assert rc == 2
    assert "--resume requires --journal" in capsys.readouterr().err


# -- artifact atomicity -------------------------------------------------


def test_vcd_writer_is_atomic(tmp_path):
    from repro.ioutil import TMP_SUFFIX
    from repro.kernel.signal import Signal
    from repro.vcd.writer import VcdWriter

    target = tmp_path / "dump.vcd"
    writer = VcdWriter(str(target))
    sig = Signal("top.s", width=1)
    writer.declare(sig)
    writer.sample(0, [sig])
    assert not target.exists()  # nothing visible until finish()
    assert (tmp_path / ("dump.vcd" + TMP_SUFFIX)).exists()
    writer.finish(1)
    assert target.exists()
    assert not (tmp_path / ("dump.vcd" + TMP_SUFFIX)).exists()


def test_no_temp_leftovers_after_faulted_batch(tmp_path, monkeypatch):
    from repro.ioutil import TMP_SUFFIX

    monkeypatch.setenv(
        CHAOS_ENV, f"crash:{CONFIG_NAME}:t01_sanity_write_read:1:rtl:1")
    _run(tmp_path, resilience=ResilienceConfig(max_retries=1, backoff=0.0))
    assert not [n for n in os.listdir(tmp_path) if n.endswith(TMP_SUFFIX)]


# -- analyzer robustness ------------------------------------------------


def test_analyzer_truncated_vcd_exits_2_with_diagnostic(tmp_path, capsys):
    from repro.analyzer.cli import main as analyzer_main

    good = tmp_path / "a.vcd"
    bad = tmp_path / "b.vcd"
    good.write_text("$enddefinitions $end\n#0\n")
    bad.write_text("$scope module top $end\n")  # truncated mid-header
    rc = analyzer_main([str(good), str(bad)])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert len(err.strip().splitlines()) == 1
    assert "b.vcd" in err


def test_compare_vcds_names_the_corrupt_dump(tmp_path):
    from repro.analyzer.align import compare_vcds
    from repro.analyzer.extract import ExtractionError

    empty = tmp_path / "empty.vcd"
    empty.write_text("")
    with pytest.raises(ExtractionError, match="truncated or corrupt"):
        compare_vcds(str(empty), str(empty))
