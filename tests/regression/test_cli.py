"""CLI front-end tests (analyzer and regression tools)."""

import os

import pytest

from repro.analyzer.cli import main as analyzer_main
from repro.catg import run_test
from repro.regression import save_config_dir
from repro.regression.cli import main as regression_main
from repro.regression.testcases import build_test
from repro.stbus import ArbitrationPolicy, NodeConfig


@pytest.fixture(scope="module")
def vcd_pair(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("cli_vcds")
    cfg = NodeConfig(n_initiators=3, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU, name="cli")
    paths = {}
    for view, bugs in (("rtl", ()), ("bca", ()), ("bad", ("lru-recency-stuck",))):
        actual_view = "bca" if view == "bad" else view
        path = str(workdir / f"{view}.vcd")
        run_test(cfg, build_test("t06_lru_fairness", cfg, 2),
                 view=actual_view, bugs=bugs, vcd_path=path)
        paths[view] = path
    return paths


def test_analyzer_cli_signoff(vcd_pair, capsys):
    code = analyzer_main([vcd_pair["rtl"], vcd_pair["bca"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "SIGNED OFF" in out
    assert "100.00%" in out


def test_analyzer_cli_detects_misalignment(vcd_pair, capsys):
    # LRU on a 2-initiator config: the stuck-recency bug changes winners.
    cfg_has_contention = analyzer_main([vcd_pair["rtl"], vcd_pair["bad"]])
    out = capsys.readouterr().out
    assert "verdict" in out
    # With two initiators contending under LRU the traces must diverge.
    assert cfg_has_contention == 1
    assert "NOT SIGNED OFF" in out


def test_analyzer_cli_diff_flag(vcd_pair, capsys):
    code = analyzer_main(["--diff", vcd_pair["rtl"], vcd_pair["bca"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "Transaction-level diff" in out


def test_analyzer_cli_ports_filter(vcd_pair, capsys):
    code = analyzer_main([vcd_pair["rtl"], vcd_pair["bca"],
                          "--ports", "tb.init0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "tb.init0" in out
    assert "tb.targ0" not in out


def test_analyzer_cli_bad_inputs(vcd_pair, capsys):
    assert analyzer_main(["/nonexistent.vcd", vcd_pair["bca"]]) == 2
    assert analyzer_main([vcd_pair["rtl"], vcd_pair["bca"],
                          "--threshold", "2.0"]) == 2


def test_regression_cli_green_run(tmp_path, capsys):
    cfg = NodeConfig(n_initiators=2, n_targets=2, name="clirun")
    save_config_dir([cfg], str(tmp_path / "cfgs"))
    code = regression_main([
        str(tmp_path / "cfgs"),
        "--workdir", str(tmp_path / "out"),
        "--seeds", "1", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "SIGNED OFF" in out
    assert os.path.exists(tmp_path / "out" / "regression_summary.txt")


def test_regression_cli_flags_buggy_bca(tmp_path, capsys):
    cfg = NodeConfig(n_initiators=3, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU, name="clibad")
    save_config_dir([cfg], str(tmp_path / "cfgs"))
    code = regression_main([
        str(tmp_path / "cfgs"),
        "--workdir", str(tmp_path / "out"),
        "--tests", "t06_lru_fairness",
        "--seeds", "1",
        "--bugs", "lru-recency-stuck",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "NOT SIGNED OFF" in out


def test_regression_cli_missing_dir(tmp_path, capsys):
    assert regression_main([str(tmp_path / "ghost")]) == 2


def test_regression_cli_parallel_smoke(tmp_path, capsys):
    """A 2-config regression under --jobs 2 works inside pytest (no
    daemon/multiprocessing clash) and prints timing on stderr only, as
    one structured JSON record."""
    import json

    cfgs = [
        NodeConfig(n_initiators=2, n_targets=2, name="clipar_a"),
        NodeConfig(n_initiators=2, n_targets=1, name="clipar_b"),
    ]
    save_config_dir(cfgs, str(tmp_path / "cfgs"))
    code = regression_main([
        str(tmp_path / "cfgs"),
        "--workdir", str(tmp_path / "out"),
        "--seeds", "1", "2",
        "--jobs", "2",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "SIGNED OFF" in captured.out
    record = json.loads(captured.err.strip().splitlines()[-1])
    assert record["event"] == "batch.complete"
    assert record["jobs"] == 2
    assert record["n_runs"] == 96  # 2 configs x 12 tests x 2 seeds x 2 views
    assert record["all_signed_off"] is True
    assert record["wall_seconds"] > 0
    assert "jobs" not in captured.out
    assert os.path.exists(tmp_path / "out" / "regression_summary.txt")


def test_regression_cli_kernel_flag_byte_identical(tmp_path, capsys):
    """--kernel compiled must reproduce the delta run's stdout and every
    workdir artifact byte for byte."""
    import filecmp

    cfg = NodeConfig(n_initiators=2, n_targets=2, name="clikern")
    save_config_dir([cfg], str(tmp_path / "cfgs"))
    outputs = {}
    codes = {}
    for kernel in ("delta", "compiled"):
        out_dir = tmp_path / f"out_{kernel}"
        codes[kernel] = regression_main([
            str(tmp_path / "cfgs"),
            "--workdir", str(out_dir),
            "--tests", "t02_random_uniform",
            "--seeds", "1",
            "--kernel", kernel,
        ])
        outputs[kernel] = capsys.readouterr().out
    # One test case alone does not reach full coverage, so the batch is
    # not signed off — identically on both engines.
    assert codes["compiled"] == codes["delta"]
    assert outputs["compiled"] == outputs["delta"]
    delta_dir, compiled_dir = tmp_path / "out_delta", tmp_path / "out_compiled"
    names = sorted(os.listdir(delta_dir))
    assert names == sorted(os.listdir(compiled_dir))
    for name in names:
        assert filecmp.cmp(str(delta_dir / name), str(compiled_dir / name),
                           shallow=False), f"{name} differs across kernels"


def test_regression_cli_rejects_unknown_kernel(tmp_path, capsys):
    cfg = NodeConfig(n_initiators=1, n_targets=1, name="clikernbad")
    save_config_dir([cfg], str(tmp_path / "cfgs"))
    with pytest.raises(SystemExit):
        regression_main([str(tmp_path / "cfgs"), "--kernel", "turbo"])
    assert "--kernel" in capsys.readouterr().err


def test_regression_cli_rejects_negative_jobs(tmp_path, capsys):
    cfg = NodeConfig(n_initiators=1, n_targets=1, name="clineg")
    save_config_dir([cfg], str(tmp_path / "cfgs"))
    code = regression_main([str(tmp_path / "cfgs"), "--jobs", "-1"])
    assert code == 2
    assert "--jobs" in capsys.readouterr().err
