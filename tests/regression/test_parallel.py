"""Parallel-vs-serial equivalence for the batch regression engine.

The whole point of ``jobs=N`` is throughput without observability: the
assembled :class:`RegressionReport`, every rendered artifact and every
VCD must be byte-identical to the serial run.  These tests pin that
down, including for a failing (buggy-BCA) run.
"""

import os

import pytest

from repro.regression import RegressionRunner, default_jobs
from repro.regression.parallel import RunJob, execute_run_job
from repro.stbus import ArbitrationPolicy, NodeConfig, ProtocolType

TESTS = ["t01_sanity_write_read", "t06_lru_fairness"]


def _configs():
    return [
        NodeConfig(n_initiators=2, n_targets=2,
                   protocol_type=ProtocolType.T3, name="par_clean"),
        NodeConfig(n_initiators=3, n_targets=2,
                   arbitration=ArbitrationPolicy.LRU, name="par_lru"),
    ]


def _run(workdir, jobs, bugs=()):
    runner = RegressionRunner(
        _configs(), tests=TESTS, seeds=(1,), workdir=str(workdir),
        bca_bugs=set(bugs), jobs=jobs,
    )
    return runner.run()


def _snapshot(workdir):
    """Every artifact in the workdir, as bytes, keyed by filename."""
    return {
        name: (workdir / name).read_bytes()
        for name in sorted(os.listdir(workdir))
    }


def test_parallel_report_and_artifacts_byte_identical(tmp_path):
    serial = _run(tmp_path / "serial", jobs=1)
    parallel = _run(tmp_path / "parallel", jobs=4)
    assert serial.render() == parallel.render()
    assert serial.all_signed_off == parallel.all_signed_off
    snap_s = _snapshot(tmp_path / "serial")
    snap_p = _snapshot(tmp_path / "parallel")
    assert sorted(snap_s) == sorted(snap_p)
    for name in snap_s:
        assert snap_s[name] == snap_p[name], f"{name} differs"
    # VCDs specifically (the alignment comparison inputs).
    vcds = [n for n in snap_s if n.endswith(".vcd")]
    assert len(vcds) == 2 * len(TESTS) * len(_configs())


def test_parallel_equivalence_with_buggy_bca(tmp_path):
    serial = _run(tmp_path / "serial", jobs=1, bugs={"lru-recency-stuck"})
    parallel = _run(tmp_path / "parallel", jobs=3,
                    bugs={"lru-recency-stuck"})
    assert serial.render() == parallel.render()
    # The bug must actually have fired, and identically on both paths.
    assert not serial.all_signed_off
    lru = serial.configs[1]
    lru_p = parallel.configs[1]
    assert not lru.all_passed
    assert [e.summary() for e in lru.entries] == \
        [e.summary() for e in lru_p.entries]
    assert _snapshot(tmp_path / "serial") == _snapshot(tmp_path / "parallel")


def test_parallel_entry_order_is_deterministic(tmp_path):
    report = _run(tmp_path, jobs=2)
    entries = [(e.config_name, e.test_name, e.seed)
               for c in report.configs for e in c.entries]
    assert entries == [
        (cfg.name, test, 1) for cfg in _configs() for test in TESTS
    ]


def test_parallel_without_workdir_skips_alignment():
    runner = RegressionRunner(
        [NodeConfig(n_initiators=1, n_targets=1, name="par_nowork")],
        tests=["t01_sanity_write_read"], jobs=2,
    )
    report = runner.run()
    entry = report.configs[0].entries[0]
    assert entry.alignment is None
    assert entry.both_passed


def test_jobs_validation():
    with pytest.raises(ValueError):
        RegressionRunner([NodeConfig()], jobs=0)
    with pytest.raises(ValueError):
        RegressionRunner([NodeConfig()], jobs=-2)


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_run_job_is_picklable_and_executable():
    import pickle

    job = RunJob(
        config=NodeConfig(n_initiators=1, n_targets=1, name="pickled"),
        test_name="t01_sanity_write_read", seed=1, view="rtl",
        vcd_path=None, report_stem=None, bugs=frozenset(),
        with_arbitration_checker=True,
    )
    restored = pickle.loads(pickle.dumps(job))
    result = execute_run_job(restored)
    assert result.passed
    assert result.view == "rtl"
    assert pickle.loads(pickle.dumps(result)).passed  # results cross back
