"""Regression tool tests: config dirs, runner, sign-off logic, flow."""

import os

import pytest

from repro.regression import (
    CommonVerificationFlow,
    FlowState,
    RegressionRunner,
    TESTCASES,
    build_test,
    configuration_matrix,
    load_config_dir,
    save_config_dir,
)
from repro.stbus import (
    Architecture,
    ArbitrationPolicy,
    ConfigError,
    NodeConfig,
    ProtocolType,
)


def test_configuration_matrix_has_more_than_36():
    configs = configuration_matrix()
    assert len(configs) > 36  # "More than 36 configurations ... tested"
    names = [c.name for c in configs]
    assert len(set(names)) == len(names)
    # The sweep covers both protocols, all architectures, all policies.
    assert {c.protocol_type for c in configs} == \
        {ProtocolType.T2, ProtocolType.T3}
    assert {c.architecture for c in configs} == set(Architecture)
    assert {c.arbitration for c in configs} == set(ArbitrationPolicy)


def test_configuration_matrix_small_subset():
    small = configuration_matrix(small=True)
    assert 0 < len(small) < len(configuration_matrix())


def test_config_dir_roundtrip(tmp_path):
    configs = configuration_matrix(small=True)
    save_config_dir(configs, str(tmp_path))
    loaded = load_config_dir(str(tmp_path))
    assert [c.name for c in loaded] == sorted(c.name for c in configs)
    by_name = {c.name: c for c in configs}
    for config in loaded:
        assert config.to_text() == by_name[config.name].to_text()


def test_load_config_dir_errors(tmp_path):
    with pytest.raises(ConfigError):
        load_config_dir(str(tmp_path / "missing"))
    with pytest.raises(ConfigError):
        load_config_dir(str(tmp_path))  # exists but empty


def test_unknown_testcase_rejected():
    with pytest.raises(KeyError):
        RegressionRunner([NodeConfig()], tests=["t99_nope"])
    with pytest.raises(KeyError):
        build_test("t99_nope", NodeConfig(), 1)


def test_build_test_deterministic():
    cfg = NodeConfig(n_initiators=2, n_targets=2)
    a = build_test("t02_random_uniform", cfg, 5)
    b = build_test("t02_random_uniform", cfg, 5)
    cells_a = [(t.opcode, t.address, t.data) for p in a.programs for t, _ in p]
    cells_b = [(t.opcode, t.address, t.data) for p in b.programs for t, _ in p]
    assert cells_a == cells_b
    c = build_test("t02_random_uniform", cfg, 6)
    cells_c = [(t.opcode, t.address, t.data) for p in c.programs for t, _ in p]
    assert cells_a != cells_c


def test_all_testcases_buildable_on_every_matrix_config():
    for config in configuration_matrix(small=True):
        for name in TESTCASES:
            test = TESTCASES[name](config, 1)
            assert len(test.programs) == config.n_initiators
            assert len(test.target_latencies) == config.n_targets
            assert test.total_transactions() > 0


def test_runner_produces_signed_off_config(tmp_path):
    cfg = NodeConfig(n_initiators=2, n_targets=2,
                     protocol_type=ProtocolType.T3,
                     arbitration=ArbitrationPolicy.ROUND_ROBIN,
                     name="signoff")
    runner = RegressionRunner([cfg], seeds=(1, 2), workdir=str(tmp_path))
    report = runner.run()
    assert report.all_signed_off, report.render()
    config_report = report.configs[0]
    assert config_report.all_passed
    assert config_report.full_functional_coverage
    assert config_report.min_alignment == 1.0
    assert all(e.coverage_equal for e in config_report.entries)
    # The tool wrote its artifacts.
    assert os.path.exists(tmp_path / "regression_summary.txt")
    assert os.path.exists(tmp_path / "signoff__report.txt")
    vcds = [p for p in os.listdir(tmp_path) if p.endswith(".vcd")]
    assert len(vcds) == 2 * 2 * len(TESTCASES)  # views x seeds x tests


def test_runner_without_workdir_skips_alignment():
    cfg = NodeConfig(n_initiators=1, n_targets=1, name="nowork")
    runner = RegressionRunner([cfg], tests=["t01_sanity_write_read"])
    report = runner.run()
    entry = report.configs[0].entries[0]
    assert entry.alignment is None
    assert entry.both_passed


def test_runner_flags_buggy_bca(tmp_path):
    cfg = NodeConfig(n_initiators=3, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU, name="buggy")
    runner = RegressionRunner(
        [cfg], tests=["t06_lru_fairness"], workdir=str(tmp_path),
        bca_bugs={"lru-recency-stuck"},
    )
    report = runner.run()
    config_report = report.configs[0]
    assert not config_report.signed_off
    entry = config_report.entries[0]
    assert entry.rtl.passed and not entry.bca.passed
    assert entry.alignment.min_rate < 0.99


def test_flow_reaches_signoff_with_clean_models(tmp_path):
    cfg = NodeConfig(n_initiators=2, n_targets=2, name="flow-clean",
                     protocol_type=ProtocolType.T3)
    flow = CommonVerificationFlow(cfg, seeds=(1, 2), workdir=str(tmp_path))
    outcome = flow.execute()
    assert outcome.signed_off
    assert outcome.iterations == 1
    states = [e.state for e in outcome.history]
    assert states[0] is FlowState.FUNCTIONAL_SPEC
    assert FlowState.BUS_ACCURATE_COMPARISON in states
    assert states[-1] is FlowState.SIGNED_OFF


def test_flow_loops_on_buggy_bca_then_signs_off(tmp_path):
    cfg = NodeConfig(n_initiators=3, n_targets=2, name="flow-buggy",
                     protocol_type=ProtocolType.T3,
                     arbitration=ArbitrationPolicy.LRU)
    flow = CommonVerificationFlow(
        cfg, seeds=(1, 2), workdir=str(tmp_path),
        initial_bca_bugs=("lru-recency-stuck",),
    )
    outcome = flow.execute()
    assert outcome.signed_off
    assert outcome.iterations >= 2  # one failed round, one after the fix
    details = " ".join(e.detail for e in outcome.history)
    assert "fix the BCA model" in details


def test_runner_writes_per_run_reports(tmp_path):
    cfg = NodeConfig(n_initiators=1, n_targets=1, name="reports")
    runner = RegressionRunner([cfg], tests=["t01_sanity_write_read"],
                              seeds=(3,), workdir=str(tmp_path))
    runner.run()
    for view in ("rtl", "bca"):
        stem = tmp_path / f"reports__t01_sanity_write_read__s3__{view}"
        report = (stem.parent / (stem.name + ".report.txt")).read_text()
        coverage = (stem.parent / (stem.name + ".coverage.txt")).read_text()
        assert "Status: PASS" in report
        assert "Functional coverage" in coverage
