"""Tests for the distributed regression service.

The coordinator's contract: a batch sharded across leased worker
processes produces artifacts **byte-identical** to a serial batch, at
any cluster size, under any worker-death schedule — and when the
cluster is entirely unreachable the batch degrades to local execution
with a single warning, never a failure.

Faults are injected through the same ``REPRO_CHAOS`` environment hook
as the in-process tests (:mod:`repro.regression.chaos`); the variable
crosses the process boundary to the spawned workers, which is exactly
how a farm scheduler's kill shows up — from outside the coordinator.
"""

import json
import os
import signal
import threading

import pytest

from repro.regression import (
    DistributedConfig,
    RegressionRunner,
    ResilienceConfig,
)
from repro.regression.chaos import CHAOS_ENV
from repro.regression.cli import main as regression_main
from repro.regression.configs import save_config_dir
from repro.stbus import NodeConfig, ProtocolType
from repro.telemetry.session import TelemetryConfig

TESTS = ["t01_sanity_write_read", "t02_random_uniform"]
CONFIG_NAME = "dist_cfg"


def _configs():
    return [NodeConfig(n_initiators=2, n_targets=2,
                       protocol_type=ProtocolType.T3, name=CONFIG_NAME)]


def _cluster(workers=2, **overrides):
    knobs = dict(lease_seconds=15.0, heartbeat_seconds=0.2,
                 spawn_timeout=30.0)
    knobs.update(overrides)
    return DistributedConfig(workers=workers, **knobs)


def _run(workdir, distributed=None, resilience=None, seeds=(1,),
         metrics=None):
    runner = RegressionRunner(
        _configs(), tests=TESTS, seeds=seeds, workdir=str(workdir),
        resilience=resilience or ResilienceConfig(backoff=0.0),
        distributed=distributed,
        telemetry=TelemetryConfig(metrics_out=metrics),
    )
    return runner.run()


def _snapshot(workdir):
    return {name: (workdir / name).read_bytes()
            for name in sorted(os.listdir(workdir))}


def _faults(metrics_path):
    with open(metrics_path) as handle:
        return json.load(handle)["batch"]["faults"]


@pytest.fixture()
def clean_ref(tmp_path):
    """A fault-free serial run: the byte-identity reference."""
    report = _run(tmp_path / "ref")
    return report, _snapshot(tmp_path / "ref")


# -- byte-identity ------------------------------------------------------


def test_distributed_matches_serial_byte_identically(tmp_path, clean_ref):
    ref_report, ref_snap = clean_ref
    metrics = tmp_path / "metrics.json"
    report = _run(tmp_path / "dist", distributed=_cluster(workers=2),
                  metrics=str(metrics))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "dist") == ref_snap
    faults = _faults(metrics)
    assert faults["worker_deaths"] == 0
    assert faults["lease_reclaims"] == 0
    assert not faults["degraded_local"]


def test_single_worker_cluster_matches_serial(tmp_path, clean_ref):
    ref_report, ref_snap = clean_ref
    report = _run(tmp_path / "dist", distributed=_cluster(workers=1))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "dist") == ref_snap


# -- worker death and lease reclamation ---------------------------------


def test_worker_kill_mid_job_recovers_byte_identically(
        tmp_path, monkeypatch, clean_ref):
    """A farm scheduler OOM-kills one worker mid-job (``worker-kill``
    chaos = ``os._exit(43)`` inside the run): the coordinator sees the
    dead connection, charges one attempt, re-leases the job on a
    respawned worker, and the batch ends byte-identical."""
    ref_report, ref_snap = clean_ref
    monkeypatch.setenv(
        CHAOS_ENV, f"worker-kill:{CONFIG_NAME}:t01_sanity_write_read:1:rtl:1")
    metrics = tmp_path / "metrics.json"
    report = _run(tmp_path / "dist", distributed=_cluster(workers=2),
                  resilience=ResilienceConfig(max_retries=2, backoff=0.0),
                  metrics=str(metrics))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "dist") == ref_snap
    faults = _faults(metrics)
    assert faults["worker_deaths"] >= 1
    assert faults["retries"] >= 1
    assert not faults["degraded_serial"]


def test_net_corrupt_frame_drops_worker_and_recovers(
        tmp_path, monkeypatch, clean_ref):
    """A corrupt result frame must poison the connection (never be
    half-trusted): the worker is dropped, the job re-leased."""
    ref_report, ref_snap = clean_ref
    monkeypatch.setenv(
        CHAOS_ENV,
        f"net-corrupt-frame:{CONFIG_NAME}:t02_random_uniform:1:bca:1")
    metrics = tmp_path / "metrics.json"
    report = _run(tmp_path / "dist", distributed=_cluster(workers=2),
                  resilience=ResilienceConfig(max_retries=2, backoff=0.0),
                  metrics=str(metrics))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "dist") == ref_snap
    assert _faults(metrics)["worker_deaths"] >= 1


def test_net_drop_loses_result_not_batch(tmp_path, monkeypatch, clean_ref):
    """A network partition right before the result frame: the work
    happened but the coordinator never learns — the lost worker's lease
    is reclaimed and the job re-executes."""
    ref_report, ref_snap = clean_ref
    monkeypatch.setenv(
        CHAOS_ENV, f"net-drop:{CONFIG_NAME}:t01_sanity_write_read:1:bca:1")
    report = _run(tmp_path / "dist", distributed=_cluster(workers=2),
                  resilience=ResilienceConfig(max_retries=2, backoff=0.0))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "dist") == ref_snap


def test_silent_worker_lease_is_reclaimed(tmp_path, monkeypatch, clean_ref):
    """``net-delay`` sits on the result frame past the lease: the
    coordinator must reclaim the lease, re-run the job elsewhere, and
    discard the late (stale) result rather than double-complete."""
    ref_report, ref_snap = clean_ref
    monkeypatch.setenv(
        CHAOS_ENV, f"net-delay:{CONFIG_NAME}:t01_sanity_write_read:1:rtl:1")
    metrics = tmp_path / "metrics.json"
    report = _run(tmp_path / "dist",
                  distributed=_cluster(workers=2, lease_seconds=1.0),
                  resilience=ResilienceConfig(max_retries=2, backoff=0.0),
                  metrics=str(metrics))
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "dist") == ref_snap
    faults = _faults(metrics)
    assert faults["lease_reclaims"] >= 1
    assert faults["worker_deaths"] >= 1


# -- graceful degradation -----------------------------------------------


def test_unreachable_cluster_degrades_to_local(tmp_path, capfd, clean_ref):
    """Every spawn exits without dialing back (`/bin/false` standing in
    for a broken farm): one warning line, then the batch runs locally
    and stays byte-identical.  Never a failure."""
    ref_report, ref_snap = clean_ref
    metrics = tmp_path / "metrics.json"
    cluster = _cluster(workers=2, spawn_timeout=10.0,
                       spawn_command=("/bin/false",))
    report = _run(tmp_path / "dist", distributed=cluster,
                  metrics=str(metrics))
    err = capfd.readouterr().err
    assert err.count("no distributed workers reachable") == 1
    assert report.render() == ref_report.render()
    assert _snapshot(tmp_path / "dist") == ref_snap
    assert _faults(metrics)["degraded_local"] is True


# -- CLI ----------------------------------------------------------------


def test_cli_rejects_bad_cluster_flags(tmp_path, capsys):
    assert regression_main(
        [str(tmp_path), "--workers", "-1"]) == 2
    assert "--workers" in capsys.readouterr().err
    assert regression_main(
        [str(tmp_path), "--cache-dir", str(tmp_path), "--no-cache"]) == 2
    assert "--no-cache" in capsys.readouterr().err


def test_cli_distributed_stdout_matches_serial(tmp_path, capsys):
    """The CLI's stdout and summary artifact are byte-identical between
    ``--workers 0`` and ``--workers 2`` (with a result cache on the
    side for the distributed batch)."""
    save_config_dir(_configs(), str(tmp_path / "cfgs"))
    outputs = {}
    for label, extra in (
            ("serial", []),
            ("dist", ["--workers", "2",
                      "--cache-dir", str(tmp_path / "cache")])):
        code = regression_main([
            str(tmp_path / "cfgs"),
            "--workdir", str(tmp_path / label),
            "--tests", "t01_sanity_write_read",
            "--seeds", "1",
        ] + extra)
        outputs[label] = capsys.readouterr().out
        assert code == 1  # one test alone never reaches full coverage
    assert outputs["dist"] == outputs["serial"]
    assert _snapshot(tmp_path / "dist") == _snapshot(tmp_path / "serial")
    # The cache saw the batch: one store per (view) run.
    assert os.path.isdir(tmp_path / "cache" / "objects")


def test_cli_sigterm_aborts_like_sigint(tmp_path, capsys, monkeypatch):
    """A farm scheduler evicts with SIGTERM: same clean abort as Ctrl-C
    — exit 130 and a resume hint pointing at the journal."""
    save_config_dir(_configs(), str(tmp_path / "cfgs"))
    monkeypatch.setenv(
        CHAOS_ENV, f"hang:{CONFIG_NAME}:t01_sanity_write_read:1:rtl")
    timer = threading.Timer(
        1.0, os.kill, (os.getpid(), signal.SIGTERM))
    timer.start()
    try:
        code = regression_main([
            str(tmp_path / "cfgs"),
            "--workdir", str(tmp_path / "out"),
            "--tests", "t01_sanity_write_read",
            "--seeds", "1",
            "--journal", str(tmp_path / "journal.jsonl"),
        ])
    finally:
        timer.cancel()
    assert code == 130
    err = capsys.readouterr().err
    assert "interrupted: batch aborted" in err
    assert "--resume" in err
    # The handler was restored: SIGTERM is back to its previous
    # disposition for the embedding process.
    assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL
