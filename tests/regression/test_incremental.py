"""End-to-end proof of incremental regression soundness.

The contract under test (the ISSUE's acceptance criteria):

* a **comment-only edit** to a design source re-runs **zero**
  simulation jobs — proven by re-running the edited tree under a
  crash-everything chaos spec — and the outputs are byte-identical;
* a **semantic edit to one process** re-runs only the entries whose
  fan-out cone contains that process (here: the BCA view, leaving the
  RTL view provably unaffected), and the incremental outputs are
  byte-identical to a full cold re-run of the edited tree;
* an **opaque process** (unrecoverable source) degrades the whole
  design to the monolithic source hash with a structured diagnostic —
  conservative, never stale;
* incremental mode without a result cache is a configuration error
  everywhere it can be requested (runner, flow, CLI).

The edit tests run real subprocess batches against a *copy* of the
package tree, because a source edit cannot be applied to an
already-imported module in-process.
"""

import dataclasses
import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.analysis import impact as impact_mod
from repro.analysis.impact import MODE_OPAQUE, ImpactIndex
from repro.cache import design_source_hash
from repro.regression import RegressionRunner
from repro.regression.chaos import CHAOS_ENV
from repro.regression.cli import main as regression_main
from repro.regression.configs import save_config_dir
from repro.regression.flow import CommonVerificationFlow
from repro.stbus import NodeConfig, ProtocolType

REPO_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))

CLOCK_MARKER = "def _on_clock(self) -> None:"


def _config():
    return NodeConfig(n_initiators=2, n_targets=2,
                      protocol_type=ProtocolType.T3, name="incr_cfg")


def _copy_tree(dst):
    shutil.copytree(
        REPO_SRC, str(dst),
        ignore=shutil.ignore_patterns("__pycache__", "*.pyc"))
    return str(dst)


def _edit_bca_clock(src, insert):
    """Insert ``insert`` as the first body line of
    ``BcaNode._on_clock`` in the copied tree."""
    path = os.path.join(src, "repro", "bca", "node.py")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert text.count(CLOCK_MARKER) == 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.replace(
            CLOCK_MARKER, CLOCK_MARKER + "\n" + insert, 1))


def _run_batch(src, cfg_dir, workdir, cache_dir, metrics,
               chaos=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = src
    env.pop("REPRO_CACHE_DIR", None)
    env.pop(CHAOS_ENV, None)
    if chaos is not None:
        env[CHAOS_ENV] = chaos
    proc = subprocess.run(
        [sys.executable, "-m", "repro.regression", str(cfg_dir),
         "--workdir", str(workdir),
         "--tests", "t01_sanity_write_read", "--seeds", "1",
         "--skip-lint", "--cache-dir", str(cache_dir),
         "--incremental", "--metrics-out", str(metrics)],
        capture_output=True, text=True, env=env)
    # Exit 1 is the expected not-signed-off verdict for this deliberately
    # tiny batch (one test, one seed, coverage far below threshold);
    # anything else is a real failure.  A chaos crash lands here too.
    assert proc.returncode in (0, 1), proc.stdout + proc.stderr
    with open(metrics, "r", encoding="utf-8") as handle:
        return json.load(handle)["batch"]


def _snapshot(workdir):
    snap = {}
    for dirpath, _, filenames in os.walk(str(workdir)):
        for name in filenames:
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, str(workdir))
            with open(full, "rb") as handle:
                snap[rel] = handle.read()
    assert snap
    return snap


@pytest.fixture
def cfg_dir(tmp_path):
    path = tmp_path / "cfg"
    save_config_dir([_config()], str(path))
    return path


def test_comment_only_edit_executes_zero_sim_jobs(tmp_path, cfg_dir):
    src = _copy_tree(tmp_path / "pkg")
    cold = _run_batch(src, cfg_dir, tmp_path / "cold",
                      tmp_path / "cache", tmp_path / "cold.json")
    assert cold["cache"] == {
        "hits": 0, "misses": 2, "stores": 2,
        "verify_failures": 0, "quarantined": 0,
    }
    assert cold["impact"]["impact.designs"] == 2
    assert cold["impact"]["impact.cone_keys"] == 2
    _edit_bca_clock(
        src, "        # incremental-impact probe: semantically inert")
    # Any simulation that executes now crashes — so a passing,
    # byte-identical warm batch proves the comment cost zero re-runs.
    warm = _run_batch(src, cfg_dir, tmp_path / "warm",
                      tmp_path / "cache", tmp_path / "warm.json",
                      chaos="crash:*:*:*:*")
    assert warm["cache"] == {
        "hits": 2, "misses": 0, "stores": 0,
        "verify_failures": 0, "quarantined": 0,
    }
    assert _snapshot(tmp_path / "warm") == _snapshot(tmp_path / "cold")


def test_single_process_edit_reruns_only_its_cone(tmp_path, cfg_dir):
    src = _copy_tree(tmp_path / "pkg")
    _run_batch(src, cfg_dir, tmp_path / "cold",
               tmp_path / "cache", tmp_path / "cold.json")
    # A behavior-neutral but AST-visible edit to one BCA process: only
    # the BCA entry's cone contains it, so the RTL entry must hit.
    _edit_bca_clock(src, "        _impact_probe = 0")
    warm = _run_batch(src, cfg_dir, tmp_path / "warm",
                      tmp_path / "cache", tmp_path / "warm.json")
    assert warm["cache"] == {
        "hits": 1, "misses": 1, "stores": 1,
        "verify_failures": 0, "quarantined": 0,
    }
    # Soundness: the selective re-run is byte-identical to a full cold
    # re-run of the edited tree into a fresh cache.
    full = _run_batch(src, cfg_dir, tmp_path / "full",
                      tmp_path / "cache2", tmp_path / "full.json")
    assert full["cache"]["misses"] == 2
    assert _snapshot(tmp_path / "warm") == _snapshot(tmp_path / "full")


def test_opaque_process_degrades_to_whole_design(monkeypatch):
    """One unrecoverable process body widens that design's key to the
    monolithic source hash and leaves a structured diagnostic."""
    real = impact_mod.design_fingerprints

    def doctored(config, view):
        fingerprints, graph = real(config, view)
        if view == "bca":
            name = sorted(fingerprints.processes)[0]
            fingerprints.processes[name] = dataclasses.replace(
                fingerprints.processes[name], mode=MODE_OPAQUE,
                digest=None, reason="source unavailable")
        return fingerprints, graph

    monkeypatch.setattr(impact_mod, "design_fingerprints", doctored)
    index = ImpactIndex([_config()])
    counters = index.counters()
    assert counters["impact.design_fallbacks"] == 1
    assert counters["impact.cone_keys"] == 1
    assert counters["impact.opaque"] == 1
    assert index.design_key("incr_cfg", "bca") == design_source_hash()
    assert index.design_key("incr_cfg", "rtl") != design_source_hash()
    fallbacks = [event for event in index.events
                 if event["mode"] == "whole-design"]
    assert len(fallbacks) == 1
    assert fallbacks[0]["design"] == "incr_cfg::bca"
    assert "opaque-process" in fallbacks[0]["reason"]


def test_runner_rejects_incremental_without_cache(tmp_path):
    with pytest.raises(ValueError, match="result cache"):
        RegressionRunner([_config()], tests=["t01_sanity_write_read"],
                         seeds=[1], workdir=str(tmp_path / "work"),
                         incremental=True)


def test_flow_rejects_incremental_without_cache():
    with pytest.raises(ValueError, match="result cache"):
        CommonVerificationFlow(_config(), incremental=True)


def test_cli_rejects_incremental_without_cache(
        tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert regression_main([str(tmp_path), "--incremental"]) == 2
    assert "--incremental requires a result cache" \
        in capsys.readouterr().err
