"""Opcode encoding, geometry and legality tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stbus import OpKind, Opcode, OpcodeError, ProtocolType, all_opcodes


def test_encode_decode_roundtrip_all():
    for opcode in all_opcodes():
        assert Opcode.decode(opcode.encode()) == opcode


def test_load_constructor():
    opcode = Opcode.load(8)
    assert opcode.kind is OpKind.LOAD
    assert opcode.size == 8
    assert not opcode.kind.carries_request_data
    assert opcode.kind.carries_response_data


def test_store_constructor():
    opcode = Opcode.store(4)
    assert opcode.kind.carries_request_data
    assert not opcode.kind.carries_response_data


def test_rmw_carries_both():
    opcode = Opcode.rmw(4)
    assert opcode.kind.carries_request_data
    assert opcode.kind.carries_response_data


def test_illegal_size_rejected():
    with pytest.raises(OpcodeError):
        Opcode.load(3)
    with pytest.raises(OpcodeError):
        Opcode.rmw(16)
    with pytest.raises(OpcodeError):
        Opcode.store(128)


def test_decode_unknown_kind_rejected():
    with pytest.raises(OpcodeError):
        Opcode.decode(0xF0)
    assert not Opcode.is_valid_encoding(0xF0)
    assert Opcode.is_valid_encoding(Opcode.load(1).encode())


def test_data_cells_geometry():
    assert Opcode.load(4).data_cells(bus_bytes=4) == 1
    assert Opcode.load(1).data_cells(bus_bytes=4) == 1
    assert Opcode.load(64).data_cells(bus_bytes=4) == 16
    assert Opcode.store(8).data_cells(bus_bytes=4) == 2


def test_type2_symmetric_packets():
    load = Opcode.load(16)
    assert load.request_cells(4, ProtocolType.T2) == 4
    assert load.response_cells(4, ProtocolType.T2) == 4
    store = Opcode.store(16)
    assert store.request_cells(4, ProtocolType.T2) == 4
    assert store.response_cells(4, ProtocolType.T2) == 4


def test_type3_asymmetric_packets():
    load = Opcode.load(16)
    assert load.request_cells(4, ProtocolType.T3) == 1
    assert load.response_cells(4, ProtocolType.T3) == 4
    store = Opcode.store(16)
    assert store.request_cells(4, ProtocolType.T3) == 4
    assert store.response_cells(4, ProtocolType.T3) == 1


def test_alignment_check():
    Opcode.load(4).check_alignment(0x100)
    with pytest.raises(OpcodeError):
        Opcode.load(4).check_alignment(0x102)
    Opcode.load(1).check_alignment(0x103)


def test_str_form():
    assert str(Opcode.store(32)) == "STORE32"


def test_all_opcodes_unique_encodings():
    encodings = [op.encode() for op in all_opcodes()]
    assert len(set(encodings)) == len(encodings)


@given(st.sampled_from(all_opcodes()), st.sampled_from([1, 2, 4, 8, 16, 32]))
def test_response_never_shorter_than_one_cell(opcode, bus_bytes):
    for protocol in (ProtocolType.T2, ProtocolType.T3):
        assert opcode.request_cells(bus_bytes, protocol) >= 1
        assert opcode.response_cells(bus_bytes, protocol) >= 1


@given(st.sampled_from(all_opcodes()), st.sampled_from([1, 2, 4, 8, 16, 32]))
def test_type3_never_longer_than_type2(opcode, bus_bytes):
    """Type III only ever *removes* cells relative to Type II."""
    assert opcode.request_cells(bus_bytes, ProtocolType.T3) <= \
        opcode.request_cells(bus_bytes, ProtocolType.T2)
    assert opcode.response_cells(bus_bytes, ProtocolType.T3) <= \
        opcode.response_cells(bus_bytes, ProtocolType.T2)
