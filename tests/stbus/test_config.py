"""NodeConfig validation and text round-trip tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stbus import (
    AddressMap,
    Architecture,
    ArbitrationPolicy,
    ConfigError,
    NodeConfig,
    ProtocolType,
    Region,
)


def test_defaults_valid():
    cfg = NodeConfig()
    assert cfg.bus_bytes == 4
    assert cfg.resolved_map.decode(0x1800) == 1


def test_type1_rejected_for_node():
    with pytest.raises(ConfigError):
        NodeConfig(protocol_type=ProtocolType.T1)


def test_port_count_limits():
    NodeConfig(n_initiators=32, n_targets=32)
    with pytest.raises(ConfigError):
        NodeConfig(n_initiators=33)
    with pytest.raises(ConfigError):
        NodeConfig(n_targets=0)


def test_data_width_must_be_legal():
    with pytest.raises(ConfigError):
        NodeConfig(data_width_bits=48)


def test_partial_crossbar_requires_connectivity():
    with pytest.raises(ConfigError):
        NodeConfig(architecture=Architecture.PARTIAL_CROSSBAR)
    cfg = NodeConfig(
        architecture=Architecture.PARTIAL_CROSSBAR,
        connectivity=frozenset({(0, 0), (1, 1), (0, 1)}),
    )
    assert cfg.path_allowed(0, 1)
    assert not cfg.path_allowed(1, 0)


def test_partial_crossbar_unreachable_target_rejected():
    with pytest.raises(ConfigError):
        NodeConfig(
            architecture=Architecture.PARTIAL_CROSSBAR,
            n_targets=2,
            connectivity=frozenset({(0, 0), (1, 0)}),
        )


def test_connectivity_on_full_crossbar_rejected():
    with pytest.raises(ConfigError):
        NodeConfig(connectivity=frozenset({(0, 0)}))


def test_arb_params_length_checked():
    with pytest.raises(ConfigError):
        NodeConfig(n_initiators=3, priorities=[1, 2])
    with pytest.raises(ConfigError):
        NodeConfig(n_initiators=2, latency_budgets=[5])
    with pytest.raises(ConfigError):
        NodeConfig(n_initiators=2, bandwidth_allocations=[1, 2, 3])


def test_address_map_target_bounds_checked():
    with pytest.raises(ConfigError):
        NodeConfig(n_targets=2, address_map=AddressMap.default(3))


def test_reachable_targets_full():
    cfg = NodeConfig(n_initiators=2, n_targets=3)
    assert cfg.reachable_targets(0) == [0, 1, 2]


def test_text_roundtrip_simple():
    cfg = NodeConfig(name="n32", protocol_type=ProtocolType.T3,
                     n_initiators=3, n_targets=2, data_width_bits=64,
                     arbitration=ArbitrationPolicy.LRU, pipe_depth=2)
    back = NodeConfig.from_text(cfg.to_text())
    assert back.name == "n32"
    assert back.protocol_type is ProtocolType.T3
    assert back.arbitration is ArbitrationPolicy.LRU
    assert back.data_width_bits == 64
    assert back.pipe_depth == 2


def test_text_roundtrip_full_features():
    cfg = NodeConfig(
        name="partial",
        architecture=Architecture.PARTIAL_CROSSBAR,
        n_initiators=2,
        n_targets=2,
        connectivity=frozenset({(0, 0), (0, 1), (1, 1), (1, 0)}),
        arbitration=ArbitrationPolicy.LATENCY_BASED,
        latency_budgets=[8, 24],
        has_programming_port=True,
        big_endian=True,
        address_map=AddressMap([Region(0, 0x800, 0), Region(0x800, 0x800, 1)]),
    )
    back = NodeConfig.from_text(cfg.to_text())
    assert back.connectivity == cfg.connectivity
    assert back.latency_budgets == [8, 24]
    assert back.has_programming_port and back.big_endian
    assert back.address_map.decode(0x900) == 1


def test_from_text_comments_and_blanks():
    text = """
    # a comment
    n_initiators = 4   # trailing comment

    n_targets = 2
    """
    cfg = NodeConfig.from_text(text)
    assert cfg.n_initiators == 4


def test_from_text_bad_line_rejected():
    with pytest.raises(ConfigError):
        NodeConfig.from_text("nonsense line\n")
    with pytest.raises(ConfigError):
        NodeConfig.from_text("n_initiators = banana\n")
    with pytest.raises(ConfigError):
        NodeConfig.from_text("arbitration = warp_speed\n")


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from([ProtocolType.T2, ProtocolType.T3]),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.sampled_from([8, 16, 32, 64, 128]),
    st.sampled_from(list(ArbitrationPolicy)),
    st.integers(min_value=1, max_value=3),
)
def test_text_roundtrip_property(protocol, n_init, n_targ, width, arb, pipe):
    cfg = NodeConfig(
        protocol_type=protocol, n_initiators=n_init, n_targets=n_targ,
        data_width_bits=width, arbitration=arb, pipe_depth=pipe,
    )
    back = NodeConfig.from_text(cfg.to_text())
    assert back.to_text() == cfg.to_text()
