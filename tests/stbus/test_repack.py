"""Repacking (size/type conversion core) property and unit tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stbus import (
    Cell,
    Opcode,
    ProtocolType,
    RespCell,
    Transaction,
    build_request_cells,
    build_response_cells,
    request_data_from_cells,
    response_data_from_cells,
)
from repro.stbus.repack import RepackError, repack_request, repack_response


def make_request(size, address, bus, protocol, kind="store", tid=5, lck=0):
    data = bytes((address + k) & 0xFF for k in range(size))
    opcode = Opcode.store(size) if kind == "store" else Opcode.load(size)
    txn = Transaction(opcode, address,
                      data=data if kind == "store" else b"",
                      tid=tid, lck=lck)
    cells = build_request_cells(txn, bus, protocol)
    for cell in cells:
        cell.src = 3
    return cells, data if kind == "store" else b""


def test_repack_request_preserves_payload_downsize():
    cells, data = make_request(16, 0x100, 8, ProtocolType.T2)
    out = repack_request(cells, 8, 2, ProtocolType.T2, ProtocolType.T2)
    assert len(out) == 8  # 16 bytes on a 2-byte bus
    assert request_data_from_cells(out, 2) == data
    assert out[-1].eop == 1
    assert all(c.src == 3 and c.tid == 5 for c in out)


def test_repack_request_preserves_payload_upsize():
    cells, data = make_request(16, 0x40, 2, ProtocolType.T2)
    out = repack_request(cells, 2, 16, ProtocolType.T2, ProtocolType.T2)
    assert len(out) == 1
    assert request_data_from_cells(out, 16) == data


def test_repack_request_t2_to_t3_shrinks_loads():
    cells, _ = make_request(16, 0x40, 4, ProtocolType.T2, kind="load")
    assert len(cells) == 4
    out = repack_request(cells, 4, 4, ProtocolType.T2, ProtocolType.T3)
    assert len(out) == 1


def test_repack_request_t3_to_t2_pads_loads():
    cells, _ = make_request(16, 0x40, 4, ProtocolType.T3, kind="load")
    assert len(cells) == 1
    out = repack_request(cells, 4, 4, ProtocolType.T3, ProtocolType.T2)
    assert len(out) == 4


def test_repack_request_preserves_lck():
    cells, _ = make_request(8, 0x40, 4, ProtocolType.T2, lck=1)
    out = repack_request(cells, 4, 8, ProtocolType.T2, ProtocolType.T2)
    assert out[-1].lck == 1
    assert all(c.lck == 0 for c in out[:-1])


def test_repack_request_rejects_bad_input():
    with pytest.raises(RepackError):
        repack_request([], 4, 8, ProtocolType.T2, ProtocolType.T2)
    bad = [Cell(add=0, opc=0xFF, eop=1)]
    with pytest.raises(RepackError):
        repack_request(bad, 4, 8, ProtocolType.T2, ProtocolType.T2)
    short, _ = make_request(16, 0x40, 4, ProtocolType.T2)
    with pytest.raises(RepackError):
        repack_request(short[:-1], 4, 8, ProtocolType.T2, ProtocolType.T2)


def test_repack_response_preserves_payload():
    data = bytes(range(16))
    cells = build_response_cells(Opcode.load(16), 8, ProtocolType.T2,
                                 data=data, src=2, tid=9, address=0x80)
    out = repack_response(cells, Opcode.load(16), 0x80, 8, 4,
                          ProtocolType.T2, ProtocolType.T2)
    assert len(out) == 4
    got = response_data_from_cells(out, Opcode.load(16), 4, address=0x80)
    assert got == data
    assert all(c.r_src == 2 and c.r_tid == 9 for c in out)


def test_repack_response_propagates_error():
    cells = build_response_cells(Opcode.load(8), 4, ProtocolType.T2,
                                 error=True, src=1, tid=2, address=0x40)
    out = repack_response(cells, Opcode.load(8), 0x40, 4, 8,
                          ProtocolType.T2, ProtocolType.T3)
    assert all(c.is_error for c in out)
    assert out[-1].r_eop == 1


def test_repack_response_empty_rejected():
    with pytest.raises(RepackError):
        repack_response([], Opcode.load(4), 0, 4, 8,
                        ProtocolType.T2, ProtocolType.T2)


@settings(max_examples=80, deadline=None)
@given(
    st.sampled_from([1, 2, 4, 8, 16, 32]),
    st.sampled_from([1, 2, 4, 8, 16, 32]),
    st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
    st.integers(min_value=0, max_value=31),
    st.sampled_from([ProtocolType.T2, ProtocolType.T3]),
    st.sampled_from([ProtocolType.T2, ProtocolType.T3]),
)
def test_repack_roundtrip_property(bus_a, bus_b, size, slot, proto_a, proto_b):
    """A→B→A repacking returns the identical packet (same geometry,
    payload, tags)."""
    address = slot * size
    cells, _ = make_request(size, address, bus_a, proto_a)
    there = repack_request(cells, bus_a, bus_b, proto_a, proto_b)
    back = repack_request(there, bus_b, bus_a, proto_b, proto_a)
    assert [c.key_fields() for c in back] == [c.key_fields() for c in cells]
    assert [c.src for c in back] == [c.src for c in cells]


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from([1, 2, 4, 8, 16]),
    st.sampled_from([1, 2, 4, 8, 16]),
    st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
    st.integers(min_value=0, max_value=15),
)
def test_repack_response_roundtrip_property(bus_a, bus_b, size, slot):
    address = slot * size
    opcode = Opcode.load(size)
    data = bytes((slot * 3 + k) & 0xFF for k in range(size))
    cells = build_response_cells(opcode, bus_a, ProtocolType.T2, data=data,
                                 src=4, tid=7, address=address)
    there = repack_response(cells, opcode, address, bus_a, bus_b,
                            ProtocolType.T2, ProtocolType.T2)
    back = repack_response(there, opcode, address, bus_b, bus_a,
                           ProtocolType.T2, ProtocolType.T2)
    assert [c.key_fields() for c in back] == [c.key_fields() for c in cells]
