"""Address map decoding tests."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stbus import AddressMap, Region, RoutingError


def test_default_map_layout():
    amap = AddressMap.default(4)
    assert len(amap) == 4
    assert amap.decode(0x0000) == 0
    assert amap.decode(0x0FFF) == 0
    assert amap.decode(0x1000) == 1
    assert amap.decode(0x3FFF) == 3
    assert amap.decode(0x4000) is None


def test_overlap_rejected():
    with pytest.raises(RoutingError):
        AddressMap([Region(0, 0x100, 0), Region(0x80, 0x100, 1)])


def test_zero_size_rejected():
    with pytest.raises(RoutingError):
        Region(0, 0, 0)


def test_hole_decodes_to_none():
    amap = AddressMap([Region(0, 0x100, 0), Region(0x200, 0x100, 1)])
    assert amap.decode(0x150) is None
    assert amap.decode(0x250) == 1


def test_region_of_and_targets():
    amap = AddressMap.default(3)
    assert amap.targets() == [0, 1, 2]
    assert amap.region_of(2).base == 0x2000
    with pytest.raises(RoutingError):
        amap.region_of(9)


def test_random_address_respects_alignment_and_region():
    amap = AddressMap.default(2)
    rng = random.Random(7)
    for _ in range(50):
        addr = amap.random_address_in(1, rng, alignment=8)
        assert addr % 8 == 0
        assert amap.decode(addr) == 1


def test_random_address_region_too_small():
    amap = AddressMap([Region(0, 4, 0)])
    with pytest.raises(RoutingError):
        amap.random_address_in(0, random.Random(0), alignment=8)


@given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=0xFFFF))
def test_default_map_decode_property(n_targets, address):
    """decode() agrees with the arithmetic definition of the default map."""
    amap = AddressMap.default(n_targets)
    expected = address // 0x1000 if address < n_targets * 0x1000 else None
    assert amap.decode(address) == expected


def test_unordered_regions_are_sorted():
    amap = AddressMap([Region(0x2000, 0x100, 5), Region(0x0, 0x100, 3)])
    assert amap.regions[0].target == 3
    assert amap.decode(0x2050) == 5
