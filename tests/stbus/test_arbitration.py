"""Behavioral tests for the six arbitration policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stbus import (
    ArbitrationPolicy,
    BandwidthArbiter,
    FixedPriorityArbiter,
    LatencyArbiter,
    LruArbiter,
    ProgrammablePriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)


def test_fixed_priority_lowest_index_wins():
    arb = FixedPriorityArbiter(4)
    assert arb.pick([2, 1, 3]) == 1
    assert arb.pick([0, 3]) == 0


def test_pick_empty_rejected():
    for arb in (FixedPriorityArbiter(2), LruArbiter(2), RoundRobinArbiter(2),
                ProgrammablePriorityArbiter(2), LatencyArbiter(2),
                BandwidthArbiter(2)):
        with pytest.raises(ValueError):
            arb.pick([])


def test_programmable_priority_defaults_match_fixed():
    arb = ProgrammablePriorityArbiter(4)
    assert arb.pick([2, 1, 3]) == 1


def test_programmable_priority_reprogramming_flips_winner():
    arb = ProgrammablePriorityArbiter(3)
    assert arb.pick([0, 2]) == 0
    arb.set_priority(2, 100)
    assert arb.pick([0, 2]) == 2


def test_programmable_priority_tie_breaks_low_index():
    arb = ProgrammablePriorityArbiter(3, priorities=[5, 5, 5])
    assert arb.pick([1, 2]) == 1


def test_lru_initial_order_is_index_order():
    arb = LruArbiter(3)
    assert arb.pick([0, 1, 2]) == 0


def test_lru_served_moves_to_back():
    arb = LruArbiter(3)
    arb.on_packet_end(0)
    assert arb.snapshot() == [1, 2, 0]
    assert arb.pick([0, 1, 2]) == 1
    arb.on_packet_end(1)
    assert arb.pick([0, 1]) == 0
    assert arb.pick([0, 1, 2]) == 2


def test_lru_grant_does_not_change_order():
    # The recency update happens at packet end, not at grant.
    arb = LruArbiter(2)
    arb.on_grant_cycle(0)
    assert arb.pick([0, 1]) == 0


def test_round_robin_rotates():
    arb = RoundRobinArbiter(3)
    assert arb.pick([0, 1, 2]) == 0
    arb.on_packet_end(0)
    assert arb.pick([0, 1, 2]) == 1
    arb.on_packet_end(1)
    assert arb.pick([0, 1, 2]) == 2
    arb.on_packet_end(2)
    assert arb.pick([0, 1, 2]) == 0


def test_round_robin_skips_idle():
    arb = RoundRobinArbiter(4)
    arb.on_packet_end(0)  # pointer -> 1
    assert arb.pick([0, 3]) == 3


def test_latency_most_urgent_wins():
    arb = LatencyArbiter(2, budgets=[10, 4])
    for _ in range(3):
        arb.tick([0, 1])
    # counters: 0 -> 7, 1 -> 1: port 1 is closer to its deadline.
    assert arb.pick([0, 1]) == 1
    assert arb.urgency(1) == 1


def test_latency_reset_on_packet_end():
    arb = LatencyArbiter(2, budgets=[8, 8])
    arb.tick([1])
    assert arb.pick([0, 1]) == 1
    arb.on_packet_end(1)
    assert arb.pick([0, 1]) == 0  # tie at 8/8 breaks to index


def test_latency_counter_can_go_negative():
    arb = LatencyArbiter(1, budgets=[2])
    for _ in range(5):
        arb.tick([0])
    assert arb.urgency(0) == -3


def test_latency_bad_budget_rejected():
    with pytest.raises(ValueError):
        LatencyArbiter(2, budgets=[0, 4])
    arb = LatencyArbiter(1)
    with pytest.raises(ValueError):
        arb.set_budget(0, 0)


def test_bandwidth_funded_beats_exhausted():
    arb = BandwidthArbiter(2, allocations=[1, 4], window=8)
    arb.on_grant_cycle(0)  # port 0 spends its only token
    assert arb.tokens(0) == 0
    assert arb.pick([0, 1]) == 1


def test_bandwidth_all_exhausted_falls_back_to_index():
    arb = BandwidthArbiter(2, allocations=[1, 1], window=8)
    arb.on_grant_cycle(0)
    arb.on_grant_cycle(1)
    assert arb.pick([0, 1]) == 0


def test_bandwidth_replenishes_after_window():
    arb = BandwidthArbiter(2, allocations=[1, 2], window=4)
    arb.on_grant_cycle(0)
    assert arb.tokens(0) == 0
    for _ in range(4):
        arb.tick([0, 1])
    assert arb.tokens(0) == 1
    assert arb.tokens(1) == 2  # capped at allocation


def test_make_arbiter_factory_covers_all_policies():
    for policy in ArbitrationPolicy:
        arb = make_arbiter(policy, 4)
        assert arb.policy is policy
        assert arb.pick([1, 2]) in (1, 2)


def test_make_arbiter_param_validation():
    with pytest.raises(ValueError):
        make_arbiter(ArbitrationPolicy.PROGRAMMABLE_PRIORITY, 2, priorities=[1])
    with pytest.raises(ValueError):
        make_arbiter(ArbitrationPolicy.BANDWIDTH_LIMITED, 2,
                     bandwidth_allocations=[-1, 1])
    with pytest.raises(ValueError):
        FixedPriorityArbiter(0)


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(list(ArbitrationPolicy)),
    st.integers(min_value=1, max_value=8),
    st.data(),
)
def test_winner_always_among_requesters_property(policy, n, data):
    """Whatever the history, pick() returns one of the requesters."""
    arb = make_arbiter(policy, n)
    for _ in range(20):
        requesting = data.draw(
            st.lists(st.integers(min_value=0, max_value=n - 1),
                     min_size=1, max_size=n, unique=True)
        )
        arb.tick(requesting)
        winner = arb.pick(requesting)
        assert winner in requesting
        arb.on_grant_cycle(winner)
        if data.draw(st.booleans()):
            arb.on_packet_end(winner)
