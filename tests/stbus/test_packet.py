"""Packet building / re-assembly tests, including round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stbus import (
    Opcode,
    PacketError,
    ProtocolType,
    Transaction,
    build_request_cells,
    build_response_cells,
    request_data_from_cells,
    response_data_from_cells,
)


def make_store(size, address=0x40, bus=4, pattern=0xA5):
    data = bytes((pattern + i) & 0xFF for i in range(size))
    return Transaction(Opcode.store(size), address, data=data), data


def test_store_request_single_cell():
    txn, data = make_store(4, address=0x40, bus=4)
    cells = build_request_cells(txn, 4, ProtocolType.T2)
    assert len(cells) == 1
    assert cells[0].eop == 1
    assert cells[0].be == 0xF
    assert cells[0].add == 0x40
    assert request_data_from_cells(cells, 4) == data


def test_store_request_multi_cell_addresses_increment():
    txn, data = make_store(16, address=0x100, bus=4)
    cells = build_request_cells(txn, 4, ProtocolType.T2)
    assert len(cells) == 4
    assert [c.add for c in cells] == [0x100, 0x104, 0x108, 0x10C]
    assert [c.eop for c in cells] == [0, 0, 0, 1]
    assert all(c.be == 0xF for c in cells)
    assert request_data_from_cells(cells, 4) == data


def test_subword_store_lane_placement():
    txn, data = make_store(1, address=0x42, bus=4)
    cells = build_request_cells(txn, 4, ProtocolType.T2)
    assert len(cells) == 1
    # Byte at address offset 2 -> lane 2.
    assert cells[0].be == 0b0100
    assert (cells[0].data >> 16) & 0xFF == data[0]
    assert request_data_from_cells(cells, 4) == data


def test_load_request_carries_no_data():
    txn = Transaction(Opcode.load(16), 0x200)
    t2 = build_request_cells(txn, 4, ProtocolType.T2)
    t3 = build_request_cells(txn, 4, ProtocolType.T3)
    assert len(t2) == 4 and len(t3) == 1
    assert all(c.data == 0 for c in t2)
    assert request_data_from_cells(t2, 4) == b""


def test_lck_only_on_last_cell():
    txn, _ = make_store(8, address=0x40, bus=4)
    txn.lck = 1
    cells = build_request_cells(txn, 4, ProtocolType.T2)
    assert [c.lck for c in cells] == [0, 1]


def test_transaction_validates_data_length():
    with pytest.raises(PacketError):
        Transaction(Opcode.store(4), 0x0, data=b"\x01")
    with pytest.raises(PacketError):
        Transaction(Opcode.load(4), 0x0, data=b"\x01\x02\x03\x04")


def test_transaction_validates_alignment():
    with pytest.raises(Exception):
        Transaction(Opcode.load(8), 0x44 + 1)


def test_response_roundtrip_load():
    data = bytes(range(16))
    cells = build_response_cells(
        Opcode.load(16), 4, ProtocolType.T2, data=data, src=3, tid=7,
        address=0x300,
    )
    assert len(cells) == 4
    assert all(c.r_src == 3 and c.r_tid == 7 for c in cells)
    assert [c.r_eop for c in cells] == [0, 0, 0, 1]
    got = response_data_from_cells(cells, Opcode.load(16), 4, address=0x300)
    assert got == data


def test_response_store_single_cell_t3():
    cells = build_response_cells(Opcode.store(16), 4, ProtocolType.T3)
    assert len(cells) == 1
    assert cells[0].r_eop == 1
    assert not cells[0].is_error


def test_error_response_flag():
    cells = build_response_cells(
        Opcode.load(4), 4, ProtocolType.T2, error=True
    )
    assert all(c.is_error for c in cells)


def test_response_wrong_data_length_rejected():
    with pytest.raises(PacketError):
        build_response_cells(Opcode.load(8), 4, ProtocolType.T2, data=b"\x00")


def test_subword_load_response_lane_placement():
    data = b"\xEE"
    cells = build_response_cells(
        Opcode.load(1), 4, ProtocolType.T2, data=data, address=0x43
    )
    assert (cells[0].r_data >> 24) & 0xFF == 0xEE
    got = response_data_from_cells(cells, Opcode.load(1), 4, address=0x43)
    assert got == data


@st.composite
def store_txns(draw):
    bus_bytes = draw(st.sampled_from([1, 2, 4, 8, 16, 32]))
    size = draw(st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    slot = draw(st.integers(min_value=0, max_value=255))
    address = slot * size  # naturally aligned
    data = bytes(draw(st.binary(min_size=size, max_size=size)))
    return bus_bytes, Transaction(Opcode.store(size), address, data=data), data


@settings(max_examples=80, deadline=None)
@given(store_txns(), st.sampled_from([ProtocolType.T2, ProtocolType.T3]))
def test_request_data_roundtrip_property(case, protocol):
    bus_bytes, txn, data = case
    cells = build_request_cells(txn, bus_bytes, protocol)
    assert cells[-1].eop == 1
    assert all(c.eop == 0 for c in cells[:-1])
    assert request_data_from_cells(cells, bus_bytes) == data


@settings(max_examples=80, deadline=None)
@given(
    st.sampled_from([1, 2, 4, 8, 16, 32]),
    st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
    st.integers(min_value=0, max_value=63),
    st.sampled_from([ProtocolType.T2, ProtocolType.T3]),
)
def test_response_data_roundtrip_property(bus_bytes, size, slot, protocol):
    address = slot * size
    data = bytes((i * 37 + 11) & 0xFF for i in range(size))
    cells = build_response_cells(
        Opcode.load(size), bus_bytes, protocol, data=data, address=address
    )
    got = response_data_from_cells(
        cells, Opcode.load(size), bus_bytes, address=address
    )
    assert got == data
