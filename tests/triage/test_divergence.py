"""Edge-case tests for the VCD lockstep walk (first-divergence search).

These pin the design notes in :mod:`repro.triage.divergence`: signals
missing from one dump are skipped (not faulted), declaration order is
irrelevant, ``x``/``z`` digits compare as 0 exactly as the analyzer
treats them, and dumps of different lengths are compared over the
shorter one.
"""

from repro.triage import SignalDivergence, find_first_divergence
from repro.vcd import parse_vcd

HEADER = """$timescale 10ns $end
$scope module tb $end
$var wire 1 ! a $end
$var wire 4 " b [3:0] $end
$upscope $end
$enddefinitions $end
"""


def _vcd(body: str, header: str = HEADER):
    return parse_vcd(header + body)


def test_identical_dumps_do_not_diverge():
    body = "#0\n0!\nb0010 \"\n#10\n1!\n#20\n0!\n"
    scan = find_first_divergence(_vcd(body), _vcd(body))
    assert not scan.diverged
    assert scan.first is None
    assert scan.compared == ("tb.a", "tb.b")
    assert not scan.truncated
    assert "no divergence" in scan.summary()


def test_first_divergence_is_earliest_cycle():
    a = _vcd("#0\n0!\nb0010 \"\n#10\n1!\n#20\n0!\n#30\n1!\n")
    b = _vcd("#0\n0!\nb0010 \"\n#10\n1!\n#20\n1!\n#30\n1!\n")
    scan = find_first_divergence(a, b)
    assert scan.diverged
    assert scan.first == SignalDivergence("tb.a", 2, 0, 1)
    assert scan.mismatch_counts == {"tb.a": 1}
    assert "tb.a @ cycle 2" in scan.summary()


def test_same_cycle_tie_broken_by_name():
    # Both signals split at cycle 1: the name-wise minimum wins and the
    # whole split set is reported.
    a = _vcd("#0\n0!\nb0000 \"\n#10\n0!\nb0000 \"\n#20\n0!\n")
    b = _vcd("#0\n0!\nb0000 \"\n#10\n1!\nb0001 \"\n#20\n0!\n")
    scan = find_first_divergence(a, b)
    assert scan.first.signal == "tb.a"
    assert scan.first.cycle == 1
    assert [d.signal for d in scan.at_first_cycle] == ["tb.a", "tb.b"]
    assert "+1 more signal(s)" in scan.summary()


def test_view_private_signals_are_skipped_not_compared():
    other = HEADER.replace('$var wire 4 " b [3:0] $end',
                           '$var wire 4 " c [3:0] $end')
    a = _vcd("#0\n0!\nb0010 \"\n#10\n1!\n")
    b = _vcd("#0\n0!\nb0111 \"\n#10\n1!\n", header=other)
    scan = find_first_divergence(a, b)
    # tb.b/tb.c differ wildly but are one-sided: never walked.
    assert not scan.diverged
    assert scan.compared == ("tb.a",)
    assert scan.only_in_a == ("tb.b",)
    assert scan.only_in_b == ("tb.c",)


def test_declaration_order_is_irrelevant():
    swapped = ('$timescale 10ns $end\n'
               '$scope module tb $end\n'
               '$var wire 4 " b [3:0] $end\n'
               '$var wire 1 ! a $end\n'
               '$upscope $end\n'
               '$enddefinitions $end\n')
    body = "#0\n1!\nb0110 \"\n#10\n0!\n"
    scan = find_first_divergence(_vcd(body), _vcd(body, header=swapped))
    assert not scan.diverged
    assert scan.compared == ("tb.a", "tb.b")


def test_x_values_compare_as_zero():
    # The parser maps x/z digits to 0; an X in one dump against a hard 0
    # in the other is agreement, matching the analyzer's own comparison.
    a = _vcd("#0\n0!\nb0000 \"\n#10\nx!\nbxx00 \"\n#20\n0!\n")
    b = _vcd("#0\n0!\nb0000 \"\n#10\n0!\nb0000 \"\n#20\n0!\n")
    scan = find_first_divergence(a, b)
    assert not scan.diverged
    # ...but an X against a hard 1 is a real divergence.
    c = _vcd("#0\n0!\nb0000 \"\n#10\n1!\nb0000 \"\n#20\n0!\n")
    scan2 = find_first_divergence(a, c)
    assert scan2.diverged
    assert scan2.first.signal == "tb.a"
    assert (scan2.first.a_value, scan2.first.b_value) == (0, 1)


def test_truncated_tail_is_not_a_divergence():
    # The longer dump's tail is absence of evidence: the walk covers the
    # shorter dump and flags the truncation instead of inventing a split.
    short = _vcd("#0\n0!\nb0010 \"\n#10\n1!\n")
    long = _vcd("#0\n0!\nb0010 \"\n#10\n1!\n#20\n0!\n#30\n1!\n")
    scan = find_first_divergence(short, long)
    assert not scan.diverged
    assert scan.truncated
    assert scan.total_cycles == short.n_cycles
    # A divergence inside the shared prefix is still found.
    long_bad = _vcd("#0\n0!\nb0011 \"\n#10\n1!\n#20\n0!\n")
    scan2 = find_first_divergence(short, long_bad)
    assert scan2.diverged
    assert scan2.truncated
    assert scan2.first.signal == "tb.b"
    assert scan2.first.cycle == 0


def test_signal_whitelist_restricts_the_walk():
    a = _vcd("#0\n0!\nb0000 \"\n#10\n0!\nb0001 \"\n#20\n0!\n")
    b = _vcd("#0\n0!\nb0000 \"\n#10\n1!\nb0000 \"\n#20\n0!\n")
    scan = find_first_divergence(a, b, signals=["tb.b", "tb.ghost"])
    assert scan.compared == ("tb.b",)
    assert scan.first.signal == "tb.b"
    # The whitelisted-but-absent name is classified, not faulted.
    assert "tb.ghost" not in scan.only_in_a + scan.only_in_b


def test_paths_and_parsed_files_are_interchangeable(tmp_path):
    body = "#0\n0!\nb0010 \"\n#10\n1!\n"
    path = tmp_path / "dump.vcd"
    path.write_text(HEADER + body)
    from_path = find_first_divergence(str(path), str(path))
    from_parsed = find_first_divergence(_vcd(body), _vcd(body))
    assert from_path.compared == from_parsed.compared
    assert from_path.total_cycles == from_parsed.total_cycles
