"""Triage threaded through the regression stack.

Covers the runner (FAIL entries grow a triage payload and a
``*__triage.json`` artifact), the report's Triage section, the journal
(triages are checkpointed and replayed on ``--resume``), serial/parallel
byte-identity, the flow's fix-loop enrichment and the telemetry rollup —
plus the invariants that triage-disabled and fault-free batches are
byte-identical to pre-triage output.
"""

import json
import os

from repro.regression import CommonVerificationFlow, RegressionRunner
from repro.regression.resilience import ResilienceConfig
from repro.stbus import ArbitrationPolicy, NodeConfig
from repro.telemetry import TelemetryConfig
from repro.triage import load_triage

BUGGY = dict(n_initiators=3, n_targets=2,
             arbitration=ArbitrationPolicy.LRU, name="buggy")
TEST = "t06_lru_fairness"
BUG = "lru-recency-stuck"


def _run(tmp_path, sub, **kwargs):
    workdir = str(tmp_path / sub)
    runner = RegressionRunner(
        [NodeConfig(**BUGGY)], tests=[TEST], seeds=(2,), workdir=workdir,
        bca_bugs={BUG}, **kwargs,
    )
    return runner.run(), workdir


def _triage_files(workdir):
    return sorted(p for p in os.listdir(workdir)
                  if p.endswith("__triage.json"))


def test_runner_attaches_triage_to_failed_entries(tmp_path):
    report, workdir = _run(tmp_path, "on", triage=True)
    entry = report.configs[0].entries[0]
    assert entry.triage is not None
    assert entry.triage.reason == "checkers-failed"
    assert entry.triage.localized
    assert entry.triage.suspects
    files = _triage_files(workdir)
    assert files == [f"buggy__{TEST}__s2__triage.json"]
    payload = load_triage(os.path.join(workdir, files[0]))
    assert payload == entry.triage.to_dict()
    rendered = report.configs[0].render()
    assert "Triage:" in rendered
    assert entry.triage.signal in rendered


def test_triage_disabled_output_is_untouched(tmp_path):
    with_triage, _ = _run(tmp_path, "on", triage=True)
    without, workdir = _run(tmp_path, "off")
    assert _triage_files(workdir) == []
    assert without.configs[0].entries[0].triage is None
    plain = without.configs[0].render()
    enriched = with_triage.configs[0].render()
    assert "Triage:" not in plain
    assert "Triage:" in enriched
    # The triage run's report is the disabled report plus the appended
    # Triage section — nothing else moved.
    assert enriched.startswith(plain)
    assert enriched[len(plain):].lstrip().startswith("Triage:")


def test_fault_free_batch_is_byte_identical_with_triage_on(tmp_path):
    clean = dict(BUGGY)
    runner_on = RegressionRunner(
        [NodeConfig(**clean)], tests=[TEST], seeds=(2,),
        workdir=str(tmp_path / "on"), triage=True,
    )
    runner_off = RegressionRunner(
        [NodeConfig(**clean)], tests=[TEST], seeds=(2,),
        workdir=str(tmp_path / "off"),
    )
    on, off = runner_on.run(), runner_off.run()
    # One test/seed cannot reach full coverage, but every run passes
    # and the alignment is perfect — no triage may fire.
    assert on.configs[0].entries[0].both_passed
    assert on.configs[0].min_alignment == 1.0
    assert on.render() == off.render()
    assert on.configs[0].render() == off.configs[0].render()
    assert _triage_files(str(tmp_path / "on")) == []


def test_serial_and_parallel_triage_are_byte_identical(tmp_path):
    serial, wd1 = _run(tmp_path, "serial", triage=True, jobs=1)
    pooled, wd2 = _run(tmp_path, "pooled", triage=True, jobs=2)
    assert serial.configs[0].render() == pooled.configs[0].render()
    assert _triage_files(wd1) == _triage_files(wd2)
    for name in _triage_files(wd1):
        a = open(os.path.join(wd1, name)).read()
        b = open(os.path.join(wd2, name)).read()
        assert a == b


def test_journal_replays_triage_on_resume(tmp_path):
    journal = str(tmp_path / "batch.journal.jsonl")
    first, workdir = _run(
        tmp_path, "journalled", triage=True,
        resilience=ResilienceConfig(journal_path=journal),
    )
    kinds = [json.loads(line).get("kind")
             for line in open(journal) if line.strip()]
    assert "triage" in kinds
    # Resume over the same journal: everything (triage included) replays
    # and the summary is byte-identical.
    runner = RegressionRunner(
        [NodeConfig(**BUGGY)], tests=[TEST], seeds=(2,), workdir=workdir,
        bca_bugs={BUG}, triage=True,
        resilience=ResilienceConfig(journal_path=journal, resume=True),
    )
    resumed = runner.run()
    assert resumed.render() == first.render()
    entry = resumed.configs[0].entries[0]
    assert entry.triage is not None
    assert entry.triage.localized


def test_resume_with_triage_toggled_on_still_works(tmp_path):
    # The batch signature excludes triage, so a journal written without
    # it can seed a --triage resume: runs replay, triage executes fresh.
    journal = str(tmp_path / "batch.journal.jsonl")
    plain, workdir = _run(
        tmp_path, "wd", resilience=ResilienceConfig(journal_path=journal),
    )
    runner = RegressionRunner(
        [NodeConfig(**BUGGY)], tests=[TEST], seeds=(2,), workdir=workdir,
        bca_bugs={BUG}, triage=True,
        resilience=ResilienceConfig(journal_path=journal, resume=True),
    )
    resumed = runner.run()
    entry = resumed.configs[0].entries[0]
    assert entry.triage is not None
    assert "Triage:" in resumed.configs[0].render()


def test_flow_fix_loop_names_the_suspects(tmp_path):
    flow = CommonVerificationFlow(
        NodeConfig(n_initiators=3, n_targets=2, name="flow-triage",
                   arbitration=ArbitrationPolicy.LRU),
        tests=[TEST], seeds=(2,), workdir=str(tmp_path),
        initial_bca_bugs=(BUG,), triage=True,
    )
    outcome = flow.execute()
    assert outcome.signed_off
    details = " ".join(e.detail for e in outcome.history)
    assert "fix the BCA model" in details  # pinned wording survives
    assert "triage: first divergence" in details
    assert "top suspect" in details


def test_flow_without_triage_is_unchanged(tmp_path):
    flow = CommonVerificationFlow(
        NodeConfig(n_initiators=3, n_targets=2, name="flow-plain",
                   arbitration=ArbitrationPolicy.LRU),
        tests=[TEST], seeds=(2,), workdir=str(tmp_path),
        initial_bca_bugs=(BUG,),
    )
    outcome = flow.execute()
    details = " ".join(e.detail for e in outcome.history)
    assert "fix the BCA model" in details
    assert "triage:" not in details


def test_metrics_rollup_reports_triage(tmp_path):
    metrics = str(tmp_path / "metrics.json")
    _run(tmp_path, "wd", triage=True,
         telemetry=TelemetryConfig(metrics_out=metrics))
    payload = json.load(open(metrics))
    rows = payload["triages"]
    assert len(rows) == 1
    row = rows[0]
    assert row["config"] == "buggy" and row["test"] == TEST
    assert row["reason"] == "checkers-failed"
    assert row["verdict"] == "localized"
    assert row["suspect_count"] > 0 and row["top_suspect"]
    counters = payload["batch"]["triage_counters"]
    assert counters["triage.suspect_count"] == row["suspect_count"]
    assert "triage.first_divergence_cycle" in counters
    # The triage span shows up in the phase split.
    assert "triage" in payload["batch"]["phase_totals"]

    from repro.telemetry.summarize import summarize_metrics

    digest = summarize_metrics(payload)
    assert "Triaged failures: 1" in digest
    assert "top suspect" in digest


def test_metrics_rollup_has_no_triage_keys_when_clean(tmp_path):
    metrics = str(tmp_path / "metrics.json")
    runner = RegressionRunner(
        [NodeConfig(**BUGGY)], tests=[TEST], seeds=(2,),
        workdir=str(tmp_path / "wd"), triage=True,
        telemetry=TelemetryConfig(metrics_out=metrics),
    )
    runner.run()  # fault-free: same config, no bug injected
    payload = json.load(open(metrics))
    assert "triages" not in payload
    assert "triage_counters" not in payload["batch"]
