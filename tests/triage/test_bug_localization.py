"""The acceptance matrix: every injectable BCA bug auto-localizes.

For each catalog bug, the known-failing matrix entry is run, triaged,
and the suspect set must contain the catalog's ``mutated_process`` —
the process the bug actually mutates.  The full artifact is then diffed
against the golden ``tests/golden/triage_*.json`` (CI runs the same
diff), and the emitted analyzer repro command must reproduce the exact
same (signal, cycle) point.
"""

import json
import os

import pytest

from repro.bca.bugs import BUG_CATALOG
from repro.triage import load_triage

from .matrix import BUG_MATRIX, golden_path, hunt_bug

ALL_MATRIX_BUGS = sorted(BUG_MATRIX)


def test_matrix_covers_the_whole_catalog():
    assert set(BUG_MATRIX) == set(BUG_CATALOG)
    for bug, info in BUG_CATALOG.items():
        assert info.mutated_process, f"{bug} has no mutated_process tag"


@pytest.mark.parametrize("bug", ALL_MATRIX_BUGS)
def test_bug_localizes_to_mutated_process(bug, tmp_path):
    report, rtl_path, bca_path = hunt_bug(bug, str(tmp_path))
    assert report.localized
    assert report.signal is not None and report.cycle is not None
    mutated = BUG_CATALOG[bug].mutated_process
    assert mutated in report.suspect_names, (
        f"{bug}: suspect set {report.suspect_names} misses the mutated "
        f"process {mutated}"
    )
    # The triage.json artifact landed next to the dumps and round-trips.
    config, test = BUG_MATRIX[bug]
    out = os.path.join(
        str(tmp_path), f"{config.name}__{test}__s1__triage.json")
    payload = load_triage(out)
    assert payload["schema_version"] == 1
    assert payload == report.to_dict()

    # Golden diff: the artifact is byte-stable across machines/workdirs.
    with open(golden_path(bug), "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert payload == golden, (
        f"{bug}: triage artifact diverges from the golden file — "
        f"regenerate with PYTHONPATH=src python tests/triage/matrix.py "
        f"--write if the change is intended"
    )

    # The emitted repro command replays to the same divergence point.
    from repro.analyzer.cli import main as analyzer_main

    assert os.path.basename(rtl_path) in report.repro["analyzer"]
    status = analyzer_main([rtl_path, bca_path, "--first-divergence"])
    assert status == 1


@pytest.mark.parametrize("bug", ALL_MATRIX_BUGS)
def test_analyzer_replay_matches_golden_point(bug, tmp_path, capsys):
    from repro.analyzer.cli import main as analyzer_main

    _, rtl_path, bca_path = hunt_bug(bug, str(tmp_path))
    capsys.readouterr()
    analyzer_main([rtl_path, bca_path, "--first-divergence"])
    out = capsys.readouterr().out
    with open(golden_path(bug), "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    first = golden["first_divergence"]
    assert (f"first divergence: {first['signal']} @ cycle "
            f"{first['cycle']}") in out
