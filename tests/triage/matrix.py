"""The bug-hunt matrix: one known-failing (config, test, seed) per
injectable BCA bug, shared by the localization tests, the golden-file
generator and the CI triage job.

Every entry was picked empirically: on the named configuration at seed
1 the test fails (checkers or alignment) with the bug injected, and the
triage suspect set contains the catalog's ``mutated_process``.  The
goldens under ``tests/golden/triage_*.json`` pin the full artifact;
regenerate them with::

    PYTHONPATH=src python tests/triage/matrix.py --write
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.stbus import ArbitrationPolicy, NodeConfig

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "golden")

HUNT_LRU = NodeConfig(
    n_initiators=6, n_targets=2, arbitration=ArbitrationPolicy.LRU,
    has_programming_port=True, name="hunt-lru",
)
HUNT_PROG = NodeConfig(
    n_initiators=6, n_targets=2,
    arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
    has_programming_port=True, name="hunt-prog",
)

#: bug name -> (config, test name); seed is always HUNT_SEED.
BUG_MATRIX: Dict[str, Tuple[NodeConfig, str]] = {
    "chunk-lock-ignored": (HUNT_LRU, "t08_locked_chunks"),
    "lru-recency-stuck": (HUNT_LRU, "t06_lru_fairness"),
    "prog-update-stale": (HUNT_PROG, "t07_priority_reprogramming"),
    "src-tag-truncation": (HUNT_LRU, "t02_random_uniform"),
    "subword-lane-misplacement": (HUNT_LRU, "t09_mixed_sizes"),
}
HUNT_SEED = 1


def golden_path(bug: str) -> str:
    return os.path.join(GOLDEN_DIR, f"triage_{bug.replace('-', '_')}.json")


def hunt_bug(bug: str, workdir: str):
    """Run the matrix entry for ``bug`` and triage it; returns
    (TriageReport, rtl_vcd_path, bca_vcd_path)."""
    from repro.analyzer import compare_vcds
    from repro.catg import run_test
    from repro.regression.testcases import build_test
    from repro.triage import REASON_ALIGNMENT, REASON_CHECKERS, triage_entry

    config, test = BUG_MATRIX[bug]
    seed = HUNT_SEED
    stem = os.path.join(workdir, f"{config.name}__{test}__s{seed}")
    rtl_path = f"{stem}__rtl.vcd"
    bca_path = f"{stem}__bca.vcd"
    run_test(config, build_test(test, config, seed), view="rtl",
             vcd_path=rtl_path, with_arbitration_checker=True)
    bca = run_test(config, build_test(test, config, seed), view="bca",
                   bugs={bug}, vcd_path=bca_path,
                   with_arbitration_checker=True)
    alignment = compare_vcds(rtl_path, bca_path)
    assert (not bca.passed) or (not alignment.signed_off), \
        f"matrix entry for {bug} no longer fails — repick the test"
    reason = REASON_CHECKERS if not bca.passed else REASON_ALIGNMENT
    report = triage_entry(
        config, test, seed, rtl_path, bca_path,
        bugs=(bug,), reason=reason, out_path=f"{stem}__triage.json",
    )
    return report, rtl_path, bca_path


def write_goldens() -> None:
    import tempfile

    for bug in sorted(BUG_MATRIX):
        with tempfile.TemporaryDirectory() as workdir:
            report, _, _ = hunt_bug(bug, workdir)
        path = golden_path(bug)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"wrote {path} ({report.verdict}, "
              f"{len(report.suspects)} suspects)")


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        print("usage: python tests/triage/matrix.py --write",
              file=sys.stderr)
        raise SystemExit(2)
    write_goldens()
