"""CLI surface of the triage feature (analyzer and regression tools)."""

import json
import os

import pytest

from repro.analyzer.cli import main as analyzer_main
from repro.catg import run_test
from repro.regression import save_config_dir
from repro.regression.cli import main as regression_main
from repro.regression.testcases import build_test
from repro.stbus import ArbitrationPolicy, NodeConfig
from repro.triage import load_triage


@pytest.fixture(scope="module")
def buggy_pair(tmp_path_factory):
    """RTL vs bugged-BCA dumps named the way the runner names them,
    plus the saved *.cfg file."""
    workdir = tmp_path_factory.mktemp("triage_cli")
    cfg = NodeConfig(n_initiators=3, n_targets=2,
                     arbitration=ArbitrationPolicy.LRU, name="clibug")
    cfg_path = str(workdir / "clibug.cfg")
    with open(cfg_path, "w", encoding="utf-8") as handle:
        handle.write(cfg.to_text())
    paths = {"cfg": cfg_path}
    for view, bugs in (("rtl", ()), ("bca", ("lru-recency-stuck",))):
        path = str(workdir / f"clibug__t06_lru_fairness__s2__{view}.vcd")
        run_test(cfg, build_test("t06_lru_fairness", cfg, 2), view=view,
                 bugs=bugs, vcd_path=path)
        paths[view] = path
    return paths


def test_first_divergence_flag(buggy_pair, capsys):
    code = analyzer_main([buggy_pair["rtl"], buggy_pair["bca"],
                          "--first-divergence"])
    out = capsys.readouterr().out
    assert code == 1
    assert "first divergence:" in out
    assert "@ cycle" in out
    # No --config: no suspect ranking, and no crash either.
    assert "suspects" not in out


def test_first_divergence_with_config_ranks_suspects(buggy_pair, capsys):
    code = analyzer_main([buggy_pair["rtl"], buggy_pair["bca"],
                          "--first-divergence",
                          "--config", buggy_pair["cfg"]])
    out = capsys.readouterr().out
    assert code == 1
    assert "suspects, cone-ranked:" in out
    assert "distance 0" in out


def test_first_divergence_on_identical_dumps(buggy_pair, capsys):
    code = analyzer_main([buggy_pair["rtl"], buggy_pair["rtl"],
                          "--first-divergence"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no divergence" in out


def test_triage_out_writes_artifact(buggy_pair, tmp_path, capsys):
    out_path = str(tmp_path / "triage.json")
    code = analyzer_main([buggy_pair["rtl"], buggy_pair["bca"],
                          "--triage-out", out_path,
                          "--config", buggy_pair["cfg"]])
    out = capsys.readouterr().out
    assert code == 1
    assert f"triage written: {out_path}" in out
    payload = load_triage(out_path)
    assert payload["schema_version"] == 1
    # Coordinates recovered from the runner-style file names.
    assert payload["config"] == "clibug"
    assert payload["test"] == "t06_lru_fairness"
    assert payload["seed"] == 2
    assert payload["reason"] == "manual"
    assert payload["suspects"]


def test_triage_out_requires_config(buggy_pair, tmp_path, capsys):
    code = analyzer_main([buggy_pair["rtl"], buggy_pair["bca"],
                          "--triage-out", str(tmp_path / "t.json")])
    err = capsys.readouterr().err
    assert code == 2
    assert "--config" in err


def test_scoreboard_failed_pin_visible_divergence(buggy_pair, capsys):
    # The dumps do diverge: no diagnostic, the failure is pin-visible.
    code = analyzer_main([buggy_pair["rtl"], buggy_pair["bca"],
                          "--scoreboard-failed"])
    out = capsys.readouterr().out
    assert code == 1
    assert "not pin-visible" not in out
    assert "NOT SIGNED OFF" in out


def test_scoreboard_failed_diagnostic_when_ports_match(buggy_pair, capsys):
    # Identical dumps + a failed external checker: the explicit
    # diagnostic replaces a silently clean alignment table, and the
    # verdict cannot be a sign-off.
    code = analyzer_main([buggy_pair["rtl"], buggy_pair["rtl"],
                          "--scoreboard-failed"])
    out = capsys.readouterr().out
    assert code == 1
    assert "divergence not pin-visible" in out
    assert "NOT SIGNED OFF" in out


def test_regression_cli_triage_flag(tmp_path, capsys):
    config_dir = str(tmp_path / "configs")
    save_config_dir(
        [NodeConfig(n_initiators=3, n_targets=2,
                    arbitration=ArbitrationPolicy.LRU, name="clibatch")],
        config_dir,
    )
    workdir = str(tmp_path / "out")
    code = regression_main([
        config_dir, "--workdir", workdir,
        "--tests", "t06_lru_fairness", "--seeds", "2",
        "--bugs", "lru-recency-stuck", "--triage",
    ])
    out = capsys.readouterr().out
    assert code == 1
    triage_file = os.path.join(
        workdir, "clibatch__t06_lru_fairness__s2__triage.json")
    assert os.path.exists(triage_file)
    payload = load_triage(triage_file)
    assert payload["verdict"] == "localized"
    # The per-config report artifact carries the Triage section.
    per_config = open(os.path.join(workdir, "clibatch__report.txt")).read()
    assert "Triage:" in per_config


def test_regression_cli_triage_needs_compare(tmp_path, capsys):
    config_dir = str(tmp_path / "configs")
    save_config_dir([NodeConfig(name="x")], config_dir)
    assert regression_main([config_dir, "--triage"]) == 2
    assert regression_main([
        config_dir, "--workdir", str(tmp_path / "o"),
        "--no-compare", "--triage"]) == 2
    err = capsys.readouterr().err
    assert "--triage" in err
