"""Self-check: every shipped regression topology must lint clean.

This is the guarantee the regression flow's lint gate rests on: all
configurations of the >36-configuration sweep, in both design views,
produce zero findings (errors *and* warnings), and the two views always
expose the identical port-level interface the common environment binds
to.  Any kernel, node-model or environment change that introduces a
structural defect — or a false positive in a rule — fails here.
"""

import pytest

from repro.lint import lint_config
from repro.regression.configs import configuration_matrix

MATRIX = configuration_matrix()


@pytest.mark.parametrize(
    "config", MATRIX, ids=[config.name for config in MATRIX]
)
def test_topology_lints_clean_in_both_views(config):
    result = lint_config(config)
    assert set(result.views) == {"rtl", "bca"}
    for view, report in sorted(result.views.items()):
        assert report.clean, (
            f"{config.name}/{view} has findings:\n{report.render()}"
        )
        # The rules that need complete clocked declarations must actually
        # be active on the shipped environments, not silently disabled.
        assert report.n_clocked > 0
    assert not result.cross_view, (
        "RTL/BCA interface mismatch:\n"
        + "\n".join(f.render() for f in result.cross_view)
    )
    assert result.clean


def test_declarations_keep_every_rule_armed():
    """The shipped envs declare clocked reads/writes, so undriven-input
    and dead-net run for real (they disable themselves otherwise)."""
    from repro.lint.graph import DesignGraph
    from repro.lint.runner import build_env

    env = build_env(MATRIX[0], "rtl")
    graph = DesignGraph.from_simulator(env.sim)
    assert graph.clocked_writes_known
    assert graph.clocked_reads_known
    assert not graph.traced
