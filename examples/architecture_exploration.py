#!/usr/bin/env python3
"""Architecture exploration with the fast BCA mode.

Section 1: "The fast simulation of BCA models permits to fast find the
optimized configuration, in terms of bandwidth, area and power
consumption."  This is that workflow: sweep node architectures and
arbitration policies over the same workload in the standalone BCA mode
(no signal kernel, validated cycle-exact against the pin-level model) and
compare throughput and latency — then verify only the chosen winner at
pin level with the full environment.

Run:  python examples/architecture_exploration.py
"""

import time

from repro import (
    Architecture,
    ArbitrationPolicy,
    NodeConfig,
    build_test,
    run_test,
)
from repro.bca.fast import run_fast


def candidates():
    """The design space: architecture x arbitration for a 4x2 node."""
    for architecture in (Architecture.SHARED_BUS, Architecture.FULL_CROSSBAR):
        for policy in (ArbitrationPolicy.FIXED_PRIORITY,
                       ArbitrationPolicy.LRU,
                       ArbitrationPolicy.LATENCY_BASED):
            name = f"{architecture.value.split('_')[0]}-{policy.value}"
            yield NodeConfig(
                name=name, n_initiators=4, n_targets=2,
                architecture=architecture, arbitration=policy,
                max_outstanding=4,
            )


def evaluate(config, seed=1):
    """Throughput/latency of the exploration workload on one candidate."""
    test = build_test("t02_random_uniform", config, seed)
    started = time.perf_counter()
    result = run_fast(config, test)
    wall = time.perf_counter() - started
    assert not result.timed_out
    return {
        "config": config,
        "cycles": result.cycles,
        "txns": len(result.completed),
        "mean_latency": result.mean_latency(),
        "worst_latency": max(t.latency for t in result.completed),
        "throughput": result.throughput(),
        "wall": wall,
    }


def main() -> None:
    print("Exploring the design space in fast BCA mode...\n")
    rows = [evaluate(config) for config in candidates()]
    rows.sort(key=lambda r: r["cycles"])
    header = (f"{'configuration':<28} {'cycles':>7} {'mean lat':>9} "
              f"{'worst lat':>10} {'txn/cyc':>8}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['config'].name:<28} {row['cycles']:>7} "
              f"{row['mean_latency']:>9.1f} {row['worst_latency']:>10} "
              f"{row['throughput']:>8.3f}")
    total_wall = sum(r["wall"] for r in rows)
    print(f"\nswept {len(rows)} candidates in {total_wall * 1000:.0f} ms "
          "of simulation time")

    best = rows[0]["config"]
    print(f"\nwinner: {best.name} — now verifying it at pin level with the "
          "full common environment...")
    result = run_test(best, build_test("t02_random_uniform", best, 1),
                      view="bca")
    print(result.summary())
    assert result.passed
    print("winner verified: ready for the full regression + sign-off flow")


if __name__ == "__main__":
    main()
