#!/usr/bin/env python3
"""The common verification flow of Figures 4 and 5, end to end.

Starts from a configuration whose first BCA drop carries a bug, and walks
the paper's flow: verification implementation → RTL + BCA verification
with the same seeded suite → (checkers fail → fix the BCA → re-verify) →
full functional coverage → bus-accurate comparison → 99% alignment on
every port → BCA sign-off.  RTL code coverage (line/branch/statement) is
collected along the way — the metric the paper can only obtain on the RTL
view.

Run:  python examples/common_flow.py
"""

import tempfile

from repro import ArbitrationPolicy, CommonVerificationFlow, NodeConfig, ProtocolType
from repro.catg import CodeCoverage


def main() -> None:
    config = NodeConfig(
        name="flow_demo",
        protocol_type=ProtocolType.T3,
        n_initiators=3,
        n_targets=2,
        arbitration=ArbitrationPolicy.LRU,
    )
    workdir = tempfile.mkdtemp(prefix="repro_flow_")
    print(f"Configuration {config.name}; artifacts in {workdir}\n")

    # The first BCA drop ships with the stuck-LRU bug; the flow must catch
    # it, loop back ("fix the BCA model"), and then sign off.
    flow = CommonVerificationFlow(
        config,
        tests=["t02_random_uniform", "t03_out_of_order", "t06_lru_fairness"],
        seeds=(1, 2),
        workdir=workdir,
        initial_bca_bugs=("lru-recency-stuck",),
    )
    with CodeCoverage() as tracer:
        outcome = flow.execute()
    print(outcome.render())

    report = outcome.final_report
    print("Final regression state:")
    print(report.render())

    print("RTL code coverage across the whole flow "
          "(the BCA view, like SystemC in 2004, reports none):")
    print(tracer.report().render())


if __name__ == "__main__":
    main()
