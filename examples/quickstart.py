#!/usr/bin/env python3
"""Quickstart: one node, one test, both design views, full comparison.

This is the shortest end-to-end tour of the common verification
environment:

1. describe a node configuration (the "HDL parameters"),
2. run the same seeded random test on the RTL view and the BCA view,
3. check every quality metric the paper uses — checkers/scoreboard pass,
   functional coverage equality, and the bus analyzer's per-port cycle
   alignment rate (99% sign-off threshold).

Run:  python examples/quickstart.py
"""

import tempfile
import os

from repro import (
    ArbitrationPolicy,
    NodeConfig,
    ProtocolType,
    build_test,
    compare_vcds,
    run_test,
)


def main() -> None:
    # 1. The DUT configuration: a Type III node, 3 initiators, 2 targets,
    #    32-bit datapath, LRU arbitration.
    config = NodeConfig(
        name="quickstart",
        protocol_type=ProtocolType.T3,
        n_initiators=3,
        n_targets=2,
        data_width_bits=32,
        arbitration=ArbitrationPolicy.LRU,
    )
    print(f"Node configuration:\n{config.to_text()}")

    workdir = tempfile.mkdtemp(prefix="repro_quickstart_")
    results = {}
    for view in ("rtl", "bca"):
        # 2. Same test case, same seed, different design view.  The test
        #    program is rebuilt per run so both views get identical
        #    stimulus (the factories are deterministic in (config, seed)).
        test = build_test("t02_random_uniform", config, seed=42)
        vcd_path = os.path.join(workdir, f"{view}.vcd")
        result = run_test(config, test, view=view, vcd_path=vcd_path)
        results[view] = result
        print(result.summary())
        if not result.passed:
            print(result.report.render())

    # 3a. Functional coverage must be identical across views.
    rtl, bca = results["rtl"], results["bca"]
    same_coverage = rtl.coverage.hit_signature() == bca.coverage.hit_signature()
    print(f"\nfunctional coverage equal across views: {same_coverage}")
    print(rtl.coverage.render())

    # 3b. Bus-accurate comparison (the STBus Analyzer).
    report = compare_vcds(rtl.vcd_path, bca.vcd_path)
    print(report.render())
    print(f"BCA sign-off: {report.signed_off} "
          f"(min port rate {report.min_rate * 100:.2f}%)")
    print(f"\nartifacts kept in {workdir}")


if __name__ == "__main__":
    main()
