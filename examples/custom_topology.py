#!/usr/bin/env python3
"""Building custom hierarchical interconnects with repro.fabric.

Where ``examples/interconnect.py`` wires Figure 1 by hand to show every
component, this example uses the declarative :class:`~repro.fabric.FabricSpec`
builder — the way a downstream user would assemble "a hierarchical
communication network composed of more than one router" (Section 3) — and
then checks the two design views of the *whole network* against each
other, exactly as the flow does for a single node.

Topology: a two-level tree.

    cpu0, cpu1 ──► Node L0 (T2) ──► local memory
                         │
                   t2/t3 converter
                         │
    dsp64 ─ 64/32 ─► Node L1 (T3) ──► dram (slow memory)
                                  └──► control registers

Run:  python examples/custom_topology.py
"""

from repro.fabric import FabricSpec
from repro.stbus import (
    AddressMap,
    NodeConfig,
    Opcode,
    ProtocolType,
    Region,
    Transaction,
    response_data_from_cells,
)

SRAM = 0x0000   # behind node L0
DRAM = 0x4000   # behind node L1
CSRS = 0x8000   # control/status registers behind node L1


def build_spec() -> FabricSpec:
    spec = FabricSpec()
    spec.master("cpu0", width=32)
    spec.master("cpu1", width=32)
    spec.master("dsp64", width=64)
    spec.node("L0", NodeConfig(
        name="L0", protocol_type=ProtocolType.T2,
        n_initiators=2, n_targets=2,
        address_map=AddressMap([
            Region(SRAM, 0x1000, 0),
            Region(DRAM, 0x4100, 1),   # everything remote
        ]),
    ))
    spec.node("L1", NodeConfig(
        name="L1", protocol_type=ProtocolType.T3,
        n_initiators=2, n_targets=2,
        address_map=AddressMap([
            Region(DRAM, 0x1000, 0),
            Region(CSRS, 0x100, 1),
        ]),
    ))
    spec.memory("sram", latency=1)
    spec.memory("dram", latency=12)
    spec.register_decoder("csrs", n_regs=32)
    spec.size_converter("dsp_bridge", ProtocolType.T3)
    spec.type_converter("uplink", ProtocolType.T2, ProtocolType.T3)
    spec.connect("cpu0", ("L0", "init", 0))
    spec.connect("cpu1", ("L0", "init", 1))
    spec.connect(("L0", "targ", 0), "sram")
    spec.connect(("L0", "targ", 1), ("uplink", "up"))
    spec.connect(("uplink", "down"), ("L1", "init", 0))
    spec.connect("dsp64", ("dsp_bridge", "up"))
    spec.connect(("dsp_bridge", "down"), ("L1", "init", 1))
    spec.connect(("L1", "targ", 0), "dram")
    spec.connect(("L1", "targ", 1), "csrs")
    return spec


def load_traffic(fabric) -> None:
    fabric.masters["cpu0"].load_program([
        (Transaction(Opcode.store(4), SRAM + 0x20, data=b"\x11\x22\x33\x44"), 0),
        (Transaction(Opcode.load(4), SRAM + 0x20), 0),
        (Transaction(Opcode.store(16), DRAM + 0x100, data=bytes(range(16))), 0),
        (Transaction(Opcode.load(16), DRAM + 0x100), 0),
    ])
    fabric.masters["cpu1"].load_program([
        (Transaction(Opcode.load(8), SRAM + 0x40), 1)
        for _ in range(3)
    ])
    fabric.masters["dsp64"].load_program([
        (Transaction(Opcode.store(4), CSRS + 0x10, data=b"\x01\x00\x00\x00"), 0),
        (Transaction(Opcode.load(4), CSRS + 0x10), 0),
        (Transaction(Opcode.load(16), DRAM + 0x100), 2),
    ])


def main() -> None:
    spec = build_spec()
    spec.validate()
    print("fabric validated: "
          f"{len(spec._nodes)} nodes, {len(spec._bridges)} converters, "
          f"{len(spec._masters)} masters, "
          f"{len(spec._memories) + len(spec._registers)} leaves\n")

    traces = {}
    for view in ("rtl", "bca"):
        fabric = spec.build(view=view)
        load_traffic(fabric)
        cycles = fabric.run_until_drained()
        cpu0 = fabric.masters["cpu0"]
        dram_read = response_data_from_cells(
            cpu0.response_packets[3], Opcode.load(16), 4,
            address=DRAM + 0x100)
        assert dram_read == bytes(range(16))
        csr = fabric.registers["csrs"].read_register(4)
        assert csr == b"\x01\x00\x00\x00"
        print(f"[{view}] drained in {cycles} cycles; "
              f"cpu0 remote read {dram_read[:4].hex()}..., "
              f"csr[4]={csr.hex()}")
        # Record the pin trace for the cross-view comparison.
        fabric2 = spec.build(view=view)
        load_traffic(fabric2)
        fabric2.elaborate()
        signals = fabric2.all_port_signals()
        rows = []
        for _ in range(400):
            fabric2.sim.step()
            rows.append(tuple(s.value for s in signals))
        traces[view] = rows

    aligned = sum(1 for a, b in zip(traces["rtl"], traces["bca"]) if a == b)
    rate = aligned / len(traces["rtl"])
    print(f"\nwhole-network RTL/BCA alignment: {rate * 100:.2f}% "
          f"over {len(traces['rtl'])} cycles")
    assert rate >= 0.99
    print("custom topology verified in both views")


if __name__ == "__main__":
    main()
