#!/usr/bin/env python3
"""The Section 5 experiment: five BCA bugs, old flow vs common environment.

"The verification environment permitted to find five bugs on BCA models,
not found using old environment of the past flow."

For each seeded BCA bug this script runs

* the **past flow** — single-initiator directed write-then-read with the
  read-back check only, and
* the **common environment** — the twelve seeded test cases with random
  traffic, protocol checkers, scoreboard, arbitration reference checker,

and prints the detection table.  Expected shape: old flow 0/5, common
environment 5/5, each bug caught by its designed mechanism.

Run:  python examples/bug_hunt.py
"""

from repro import (
    ArbitrationPolicy,
    BUG_CATALOG,
    ALL_BUGS,
    NodeConfig,
    TESTCASES,
    build_test,
    run_past_flow,
    run_test,
)


def hunt_configs():
    """Configurations that can expose every bug (LRU + programmable
    arbitration, 6 initiators so the truncated source tag aliases)."""
    return [
        NodeConfig(n_initiators=6, n_targets=2,
                   arbitration=ArbitrationPolicy.LRU,
                   has_programming_port=True, name="hunt-lru"),
        NodeConfig(n_initiators=6, n_targets=2,
                   arbitration=ArbitrationPolicy.PROGRAMMABLE_PRIORITY,
                   has_programming_port=True, name="hunt-prog"),
    ]


def common_env_detects(bug: str):
    """Run the suite until some test fails; report (found, test, rules)."""
    for config in hunt_configs():
        for name in TESTCASES:
            result = run_test(config, build_test(name, config, seed=1),
                              view="bca", bugs={bug})
            if not result.passed:
                return True, name, sorted(result.report.rules_hit())
    return False, None, []


def main() -> None:
    print(f"{'bug':<30} {'past flow':<12} {'common env':<12} "
          f"first failing test / rules")
    print("-" * 100)
    old_found = 0
    new_found = 0
    for bug in ALL_BUGS:
        old = run_past_flow(hunt_configs()[0], view="bca", bugs={bug})
        old_verdict = "FAIL (found)" if not old.passed else "pass (miss)"
        old_found += 0 if old.passed else 1
        found, test, rules = common_env_detects(bug)
        new_found += int(found)
        new_verdict = "FOUND" if found else "missed"
        detail = f"{test}: {', '.join(rules[:4])}" if found else "-"
        print(f"{bug:<30} {old_verdict:<12} {new_verdict:<12} {detail}")
    print("-" * 100)
    print(f"past flow found {old_found}/5 bugs; "
          f"common environment found {new_found}/5 bugs")
    print("\nBug catalog (what each bug is and why the old flow is blind):")
    for bug in ALL_BUGS:
        info = BUG_CATALOG[bug]
        print(f"  {info.name}")
        print(f"    what:     {info.description}")
        print(f"    caught by: {info.caught_by}")
        print(f"    old flow: {info.why_old_flow_misses}")


if __name__ == "__main__":
    main()
