#!/usr/bin/env python3
"""Static lint: catch structural design bugs before simulating a cycle.

Two bugs that are miserable to debug at runtime are seeded into a small
design:

1. a combinational feedback loop (``a = not b``, ``b = not a``) — at
   runtime this only surfaces as a DeltaOverflowError somewhere in the
   middle of a test, with no indication of *which* processes form the
   loop;
2. a floating input — a signal a process depends on that nothing drives,
   which at runtime silently reads as zero forever and at best shows up
   as a coverage hole.

The lint pass finds both *statically* (the design is elaborated under
read/write tracking, but no clock cycle ever runs) and names the full
loop path and the floating pin.

Run:  python examples/lint_demo.py
"""

from repro.kernel import Module, Simulator
from repro.lint import lint_simulator


def build_buggy_design() -> Simulator:
    sim = Simulator()
    top = Module(sim, "soc")

    # Bug 1: cross-coupled inverters — combinational feedback.
    a = top.signal("a")
    b = top.signal("b")

    def invert_b() -> None:
        a.drive(1 - int(b))

    def invert_a() -> None:
        b.drive(1 - int(a))

    top.comb(invert_b, [b], name="invert_b")
    top.comb(invert_a, [a], name="invert_a")

    # Bug 2: `enable` is consumed but no process ever drives it.
    enable = top.signal("enable")
    gated = top.signal("gated")

    def gate() -> None:
        gated.drive(int(enable))

    top.comb(gate, [enable], name="gate")

    # A well-formed clocked consumer, with declared read/write sets so
    # the undriven-input rule can reason about clocked dataflow.
    captured = top.signal("captured")

    def capture() -> None:
        captured.drive(int(gated))

    top.clocked(capture, name="capture", reads=[gated], writes=[captured])
    return sim


def main() -> int:
    sim = build_buggy_design()
    report = lint_simulator(sim, design="lint-demo")
    print(report.render(), end="")
    assert sim.now == 0, "lint must not simulate"

    loop = [f for f in report.findings if f.rule == "comb-loop"]
    floating = [f for f in report.findings if f.rule == "undriven-input"]
    print()
    print(f"comb loop found, full path: {' -> '.join(loop[0].path)}")
    print(f"floating input found: {floating[0].signal}")
    print("both caught before a single clock cycle was simulated")
    return 1 if report.has_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
