#!/usr/bin/env python3
"""Figure 1: a hierarchical STBus interconnect, in both design views.

The paper's Figure 1 shows a communication network built from the four
basic components: two nodes of different protocol types, a 64/32 size
converter in front of one initiator, and a t2/t3 type converter between
the nodes.  This example wires that topology out of this library's
components — once with the RTL views, once with the BCA views — runs the
same traffic through both fabrics, checks end-to-end data integrity, and
verifies the two fabrics stay pin-aligned cycle by cycle.

Topology (addresses in brackets):

    bfm0 (32b) ──┐
    bfm1 (32b) ──┤  Node A (Type II, 32-bit)     [0x0000-0x0FFF] mem A
    bfm2 (64b) ─ 64/32 size conv ─┘        └─ t2/t3 conv ─ Node B (Type III)
                                                  [0x1000-0x1FFF] mem B
                                                  [0x2000-0x20FF] registers

Run:  python examples/interconnect.py
"""

from repro.bca import (
    BcaNode,
    BcaRegisterDecoder,
    BcaSizeConverter,
    BcaTypeConverter,
)
from repro.catg import InitiatorBfm, TargetHarness
from repro.kernel import Module, Simulator
from repro.rtl import (
    RtlNode,
    RtlRegisterDecoder,
    RtlSizeConverter,
    RtlTypeConverter,
)
from repro.stbus import (
    AddressMap,
    NodeConfig,
    Opcode,
    ProtocolType,
    Region,
    StbusPort,
    Transaction,
    response_data_from_cells,
)

MEM_A = 0x0000
MEM_B = 0x1000
REGS = 0x2000


class Interconnect:
    """The Figure 1 fabric, parameterized by design view."""

    def __init__(self, view: str):
        self.view = view
        rtl = view == "rtl"
        self.sim = Simulator()
        self.top = Module(self.sim, "soc")
        top = self.top

        # Node A: Type II, 32-bit, 3 initiators, 2 targets.
        self.cfg_a = NodeConfig(
            name="nodeA", protocol_type=ProtocolType.T2,
            n_initiators=3, n_targets=2, data_width_bits=32,
            address_map=AddressMap([
                Region(MEM_A, 0x1000, 0),      # local memory
                Region(MEM_B, 0x1100, 1),      # everything behind node B
            ]),
        )
        self.a_init = [StbusPort(top, f"a_init{i}", 32) for i in range(3)]
        self.a_targ = [StbusPort(top, f"a_targ{t}", 32) for t in range(2)]
        node_cls = RtlNode if rtl else BcaNode
        self.node_a = node_cls(self.sim, "nodeA", self.cfg_a,
                               self.a_init, self.a_targ, parent=top)

        # Node B: Type III, 32-bit, 1 initiator (the bridge), 2 targets.
        self.cfg_b = NodeConfig(
            name="nodeB", protocol_type=ProtocolType.T3,
            n_initiators=1, n_targets=2, data_width_bits=32,
            address_map=AddressMap([
                Region(MEM_B, 0x1000, 0),
                Region(REGS, 0x100, 1),
            ]),
        )
        self.b_init = [StbusPort(top, "b_init0", 32)]
        self.b_targ = [StbusPort(top, f"b_targ{t}", 32) for t in range(2)]
        self.node_b = node_cls(self.sim, "nodeB", self.cfg_b,
                               self.b_init, self.b_targ, parent=top)

        # 64/32 size converter in front of initiator 2 (Figure 1's "64/32").
        self.wide_port = StbusPort(top, "wide", 64)
        size_cls = RtlSizeConverter if rtl else BcaSizeConverter
        self.size_conv = size_cls(self.sim, "sizeconv", self.wide_port,
                                  self.a_init[2], ProtocolType.T2, parent=top)

        # t2/t3 type converter between the nodes (Figure 1's "t2 / t3").
        type_cls = RtlTypeConverter if rtl else BcaTypeConverter
        self.type_conv = type_cls(
            self.sim, "typeconv", self.a_targ[1], self.b_init[0],
            ProtocolType.T2, ProtocolType.T3, parent=top,
        )

        # Leaf agents: memories and the register decoder.
        self.mem_a = TargetHarness(self.sim, "memA", self.a_targ[0],
                                   ProtocolType.T2, latency=2, seed=1,
                                   parent=top)
        self.mem_b = TargetHarness(self.sim, "memB", self.b_targ[0],
                                   ProtocolType.T3, latency=4, seed=2,
                                   parent=top)
        regdec_cls = RtlRegisterDecoder if rtl else BcaRegisterDecoder
        self.regs = regdec_cls(self.sim, "regs", self.b_targ[1],
                               ProtocolType.T3, n_regs=16, parent=top)

        # Bus masters: two 32-bit BFMs plus one 64-bit BFM over the
        # size converter.
        self.bfms = [
            InitiatorBfm(self.sim, "bfm0", self.a_init[0], ProtocolType.T2,
                         parent=top),
            InitiatorBfm(self.sim, "bfm1", self.a_init[1], ProtocolType.T2,
                         parent=top),
            InitiatorBfm(self.sim, "bfm2", self.wide_port, ProtocolType.T2,
                         parent=top),
        ]

    def load_traffic(self):
        """Each master exercises a different corner of the fabric."""
        # bfm0: local memory on node A, then remote memory behind node B.
        self.bfms[0].load_program([
            (Transaction(Opcode.store(4), MEM_A + 0x10,
                         data=b"\x01\x02\x03\x04"), 0),
            (Transaction(Opcode.load(4), MEM_A + 0x10), 0),
            (Transaction(Opcode.store(8), MEM_B + 0x20,
                         data=bytes(range(8))), 0),
            (Transaction(Opcode.load(8), MEM_B + 0x20), 0),
        ])
        # bfm1: hammers node A's local memory (contending with bfm0).
        self.bfms[1].load_program([
            (Transaction(Opcode.store(4), MEM_A + 0x40 + 8 * k,
                         data=bytes([k, k + 1, k + 2, k + 3])), 1)
            for k in range(4)
        ])
        # bfm2 (64-bit): writes a register behind two nodes and two
        # converters, then reads it back.
        self.bfms[2].load_program([
            (Transaction(Opcode.store(4), REGS + 0x08,
                         data=b"\xCA\xFE\xBA\xBE"), 0),
            (Transaction(Opcode.load(4), REGS + 0x08), 0),
        ])

    def run(self, max_cycles=2000):
        self.sim.elaborate()
        self.sim.run_until(
            lambda: all(b.done for b in self.bfms)
            and len(self.bfms[0].response_packets) >= 4
            and len(self.bfms[1].response_packets) >= 4
            and len(self.bfms[2].response_packets) >= 2,
            max_cycles,
        )
        self.sim.run(10)

    def observed_pins(self):
        ports = self.a_init + self.a_targ + self.b_init + self.b_targ \
            + [self.wide_port]
        return [sig for port in ports for sig in port.signals()]


def check_data(fabric: Interconnect) -> None:
    bfm0, bfm1, bfm2 = fabric.bfms
    local = response_data_from_cells(
        bfm0.response_packets[1], Opcode.load(4), 4, address=MEM_A + 0x10)
    assert local == b"\x01\x02\x03\x04", local
    remote = response_data_from_cells(
        bfm0.response_packets[3], Opcode.load(8), 4, address=MEM_B + 0x20)
    assert remote == bytes(range(8)), remote
    reg = response_data_from_cells(
        bfm2.response_packets[1], Opcode.load(4), 8, address=REGS + 0x08)
    assert reg == b"\xCA\xFE\xBA\xBE", reg
    assert fabric.regs.read_register(2) == b"\xCA\xFE\xBA\xBE"
    print(f"  [{fabric.view}] local read:  {local.hex()}")
    print(f"  [{fabric.view}] remote read: {remote.hex()} "
          "(through t2/t3 converter and node B)")
    print(f"  [{fabric.view}] register read: {reg.hex()} "
          "(64-bit master through the 64/32 size converter)")


def main() -> None:
    print("Building the Figure 1 interconnect in both design views...")
    traces = {}
    for view in ("rtl", "bca"):
        fabric = Interconnect(view)
        fabric.load_traffic()
        fabric.sim.elaborate()
        pins = fabric.observed_pins()
        rows = []
        for _ in range(600):
            fabric.sim.step()
            rows.append(tuple(sig.value for sig in pins))
        traces[view] = rows
        check_data(fabric)
    mismatches = sum(
        1 for a, b in zip(traces["rtl"], traces["bca"]) if a != b
    )
    rate = 1 - mismatches / len(traces["rtl"])
    print(f"\nwhole-fabric RTL/BCA pin alignment over 600 cycles: "
          f"{rate * 100:.2f}%")
    assert rate >= 0.99, "fabric views diverged"
    print("Figure 1 topology verified in both views.")


if __name__ == "__main__":
    main()
